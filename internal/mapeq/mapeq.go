// Package mapeq implements the map equation (Rosvall et al. 2009), the
// objective function minimized by Infomap. It provides the flow
// initialization for undirected graphs, the two-level codelength L(M) of
// Equation 3 in the paper, and the exact delta-L of single-vertex moves
// that both the sequential and the distributed algorithm evaluate in
// their inner loops.
//
// All quantities are normalized: visit probabilities p_alpha sum to 1
// over the vertices, and module exit probabilities q_m are cut weights
// divided by twice the total edge weight. Codelengths are in bits
// (logarithms base 2).
package mapeq

import (
	"math"

	"dinfomap/internal/graph"
)

// ApproxEq reports whether a and b are equal within eps, the tolerance
// all non-test MDL/codelength comparisons must use instead of == / !=
// (raw float equality on order-dependent sums makes control flow depend
// on rounding noise; the floateq analyzer enforces this).
//
// The check is exact equality (covering ±0 and same-signed infinities),
// then an absolute tolerance |a-b| <= eps (so values straddling zero —
// including subnormals — compare equal under a sensible eps), then a
// relative tolerance |a-b| <= eps*max(|a|, |b|) for large magnitudes.
// NaN compares unequal to everything, itself included. eps must be
// non-negative; eps = 0 degenerates to exact equality.
func ApproxEq(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	//dinfomap:float-ok this is the epsilon helper itself; the exact path handles ±0 and infinities
	if a == b {
		return true
	}
	// Unequal infinities (or infinite vs finite) must not slip through
	// the relative test below, where eps*Inf == Inf would absorb them.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	return d <= eps*math.Max(math.Abs(a), math.Abs(b))
}

// PlogP returns x*log2(x), with the measure-theoretic convention that
// 0*log(0) = 0. Negative inputs (which can appear as tiny numerical
// noise when subtracting flows) are clamped to zero.
func PlogP(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log2(x)
}

// VertexFlow holds the per-vertex stationary flow of an undirected
// graph: the visit probability of each vertex and the exit probability
// it would have as a singleton module.
type VertexFlow struct {
	// P[u] is the visit probability of u: strength(u) / (2W), where a
	// self-loop contributes twice to strength (paper Section 2.2).
	P []float64
	// Exit[u] is the exit probability of the singleton module {u}:
	// (strength(u) - 2*selfLoop(u)) / (2W). Self-loops never exit.
	Exit []float64
	// SumPlogpP is the constant term sum_alpha plogp(p_alpha) of Eq. 3.
	SumPlogpP float64
	// TotalWeight is W, the sum of undirected edge weights.
	TotalWeight float64
}

// NewVertexFlow computes the flow quantities of g. Graphs with zero
// total weight yield all-zero flows.
func NewVertexFlow(g *graph.Graph) *VertexFlow {
	n := g.NumVertices()
	f := &VertexFlow{
		P:           make([]float64, n),
		Exit:        make([]float64, n),
		TotalWeight: g.TotalWeight(),
	}
	if f.TotalWeight <= 0 {
		return f
	}
	inv2W := 1 / (2 * f.TotalWeight)
	for u := 0; u < n; u++ {
		strength := 0.0
		selfW := 0.0
		g.Neighbors(u, func(v int, w float64) {
			if v == u {
				selfW += w
				strength += 2 * w
			} else {
				strength += w
			}
		})
		f.P[u] = strength * inv2W
		f.Exit[u] = (strength - 2*selfW) * inv2W
		f.SumPlogpP += PlogP(f.P[u])
	}
	return f
}

// Norm returns the normalization factor 1/(2W), or 0 for empty graphs.
func (f *VertexFlow) Norm() float64 {
	if f.TotalWeight <= 0 {
		return 0
	}
	return 1 / (2 * f.TotalWeight)
}

// Module is the statistics of one module needed by the map equation:
// exactly the payload of the paper's Module_Info message (List 1) minus
// bookkeeping flags.
type Module struct {
	SumPr   float64 // sum of visit probabilities of members
	ExitPr  float64 // exit probability q_m (normalized cut weight)
	Members int     // number of member vertices
}

// Empty reports whether the module has no members.
func (m Module) Empty() bool { return m.Members == 0 }

// Aggregates carries the three module sums of Eq. 3 so the codelength
// and move deltas are O(1). Both algorithms maintain one of these
// incrementally and re-derive it from scratch at iteration boundaries to
// cancel floating-point drift.
type Aggregates struct {
	QTotal     float64 // sum_m q_m
	SumQLogQ   float64 // sum_m plogp(q_m)
	SumQPLogQP float64 // sum_m plogp(q_m + p_m)
	SumPlogpP  float64 // sum_alpha plogp(p_alpha): constant per level
}

// L returns the two-level map equation codelength in bits (Eq. 3):
//
//	L = plogp(Q) - 2*sum plogp(q_m) - sum plogp(p_a) + sum plogp(q_m+p_m)
func (a Aggregates) L() float64 {
	return PlogP(a.QTotal) - 2*a.SumQLogQ - a.SumPlogpP + a.SumQPLogQP
}

// AggregateModules builds Aggregates from a module table. sumPlogpP is
// the constant vertex term (VertexFlow.SumPlogpP for the current level).
func AggregateModules(mods []Module, sumPlogpP float64) Aggregates {
	a := Aggregates{SumPlogpP: sumPlogpP}
	for _, m := range mods {
		if m.Empty() {
			continue
		}
		a.QTotal += m.ExitPr
		a.SumQLogQ += PlogP(m.ExitPr)
		a.SumQPLogQP += PlogP(m.ExitPr + m.SumPr)
	}
	return a
}

// Move describes a candidate relocation of one vertex u from module
// From to module To, with the flow quantities the delta computation
// needs. WToFrom/WToTo are the normalized link weights (w/(2W)) between
// u and the *other* members of From, respectively the members of To.
type Move struct {
	PU      float64 // visit probability of u
	ExitU   float64 // singleton exit probability of u
	WToFrom float64 // normalized links u <-> (From \ {u})
	WToTo   float64 // normalized links u <-> To
}

// after returns the updated (from, to, aggregates) after applying mv to
// a vertex currently in from.
func after(a Aggregates, from, to Module, mv Move) (Aggregates, Module, Module) {
	// New exit probabilities (see DESIGN.md for the derivation):
	// removing u turns its internal links into exiting ones and removes
	// its external links from the cut; adding u does the reverse.
	newFrom := Module{
		SumPr:   from.SumPr - mv.PU,
		ExitPr:  from.ExitPr - mv.ExitU + 2*mv.WToFrom,
		Members: from.Members - 1,
	}
	newTo := Module{
		SumPr:   to.SumPr + mv.PU,
		ExitPr:  to.ExitPr + mv.ExitU - 2*mv.WToTo,
		Members: to.Members + 1,
	}
	if newFrom.Members == 0 {
		// Empty modules carry no flow; clamp numerical residue.
		newFrom.SumPr = 0
		newFrom.ExitPr = 0
	}
	clampModule(&newFrom)
	clampModule(&newTo)
	a.QTotal += newFrom.ExitPr + newTo.ExitPr - from.ExitPr - to.ExitPr
	if a.QTotal < 0 {
		a.QTotal = 0
	}
	a.SumQLogQ += PlogP(newFrom.ExitPr) + PlogP(newTo.ExitPr) -
		PlogP(from.ExitPr) - PlogP(to.ExitPr)
	a.SumQPLogQP += PlogP(newFrom.ExitPr+newFrom.SumPr) + PlogP(newTo.ExitPr+newTo.SumPr) -
		PlogP(from.ExitPr+from.SumPr) - PlogP(to.ExitPr+to.SumPr)
	return a, newFrom, newTo
}

func clampModule(m *Module) {
	if m.ExitPr < 0 && m.ExitPr > -1e-12 {
		m.ExitPr = 0
	}
	if m.SumPr < 0 && m.SumPr > -1e-12 {
		m.SumPr = 0
	}
}

// DeltaL returns the codelength change (bits) of applying mv to a vertex
// currently in from, moving it to to. Negative is an improvement.
func DeltaL(a Aggregates, from, to Module, mv Move) float64 {
	na, _, _ := after(a, from, to, mv)
	return na.L() - a.L()
}

// ApplyMove applies mv and returns the updated aggregates and modules.
func ApplyMove(a Aggregates, from, to Module, mv Move) (Aggregates, Module, Module) {
	return after(a, from, to, mv)
}

package mapeq

import (
	"math"
	"testing"
)

func TestApproxEq(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	sub := math.SmallestNonzeroFloat64 // subnormal
	tests := []struct {
		name string
		a, b float64
		eps  float64
		want bool
	}{
		{"exact", 1.5, 1.5, 0, true},
		{"exact zero eps zero", 0, 0, 0, true},
		{"within relative", 1.0, 1.0 + 1e-12, 1e-9, true},
		{"outside relative", 1.0, 1.0 + 1e-6, 1e-9, false},
		{"relative scales with magnitude", 1e12, 1e12 + 1, 1e-9, true},
		{"absolute floor near zero", 1e-15, -1e-15, 1e-12, true},
		{"sign flip outside eps", 0.1, -0.1, 1e-9, false},

		// NaN never equals anything, including itself.
		{"nan left", nan, 1, 1e-9, false},
		{"nan right", 1, nan, 1e-9, false},
		{"nan both", nan, nan, 1e-9, false},
		{"nan vs zero eps zero", nan, 0, 0, false},

		// Signed zeros are numerically equal.
		{"pos zero neg zero", 0.0, math.Copysign(0, -1), 0, true},
		{"neg zero pos zero", math.Copysign(0, -1), 0.0, 0, true},

		// Subnormals: exact match, and tiny gaps are absorbed by the
		// absolute floor but not by a pure relative test.
		{"subnormal exact", sub, sub, 0, true},
		{"subnormal vs zero", sub, 0, 1e-300, true},
		{"subnormal vs zero eps zero", sub, 0, 0, false},
		{"subnormal gap", 3 * sub, 5 * sub, 1e-12, true},

		// Infinities: equal only with matching sign.
		{"inf inf", inf, inf, 0, true},
		{"inf -inf", inf, -inf, 1e-9, false},
		{"inf finite", inf, 1e308, 1e-9, false},
	}
	for _, tt := range tests {
		if got := ApproxEq(tt.a, tt.b, tt.eps); got != tt.want {
			t.Errorf("%s: ApproxEq(%v, %v, %v) = %v, want %v",
				tt.name, tt.a, tt.b, tt.eps, got, tt.want)
		}
	}
}

func TestApproxEqSymmetric(t *testing.T) {
	pairs := [][2]float64{
		{1, 1 + 1e-12}, {0, 1e-15}, {-2.5, -2.5000001},
		{math.SmallestNonzeroFloat64, 0}, {1e12, 1e12 + 1},
	}
	for _, p := range pairs {
		for _, eps := range []float64{0, 1e-15, 1e-9, 1e-3} {
			if ApproxEq(p[0], p[1], eps) != ApproxEq(p[1], p[0], eps) {
				t.Errorf("ApproxEq not symmetric for (%v, %v, eps=%v)", p[0], p[1], eps)
			}
		}
	}
}

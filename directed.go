package dinfomap

// Directed graph support: the paper notes its method applies to
// directed graphs via the original Infomap flow model (Section 2.2).
// This file exposes the directed extension: a directed graph type, the
// PageRank-style flow, and the directed map-equation optimizer.

import (
	"io"

	"dinfomap/internal/digraph"
	"dinfomap/internal/dirinfomap"
)

// DirectedGraph is a directed graph with merged parallel arcs.
type DirectedGraph = digraph.Graph

// DirectedBuilder accumulates directed arcs.
type DirectedBuilder = digraph.Builder

// NewDirectedBuilder returns a builder for a directed graph with n
// vertices (auto-growing).
func NewDirectedBuilder(n int) *DirectedBuilder { return digraph.NewBuilder(n) }

// ReadArcList parses "u v [w]" lines into a directed graph.
func ReadArcList(r io.Reader) (*DirectedGraph, error) { return digraph.ReadArcList(r) }

// DirectedConfig controls directed Infomap (teleportation tau etc.).
type DirectedConfig = dirinfomap.Config

// DirectedResult is a directed Infomap result.
type DirectedResult = dirinfomap.Result

// RunDirected executes Infomap on a directed graph: stationary visit
// rates via a teleporting random walk, then greedy minimization of the
// directed map equation.
func RunDirected(g *DirectedGraph, cfg DirectedConfig) *DirectedResult {
	return dirinfomap.Run(g, cfg)
}

// DirectedCodelengthOf evaluates the directed map equation of an
// arbitrary partition on g (tau <= 0 means the default 0.15).
func DirectedCodelengthOf(g *DirectedGraph, comm []int, tau float64) float64 {
	return dirinfomap.CodelengthOf(g, comm, tau)
}

// Undirected converts a directed graph into an undirected one by
// dropping arc directions (weights of antiparallel arc pairs sum).
func Undirected(g *DirectedGraph) *Graph {
	b := NewBuilder(g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		g.OutNeighbors(u, func(v int, w float64) {
			if u <= v { // count each unordered pair once per direction
				b.AddWeightedEdge(u, v, w)
			} else {
				b.AddWeightedEdge(v, u, w)
			}
		})
	}
	return b.Build()
}

package dinfomap

// Multi-trial runners: like the reference Infomap implementation, the
// greedy optimization is seed-sensitive, and production use runs
// several independent trials and keeps the partition with the shortest
// codelength.

// RunSequentialTrials runs sequential Infomap `trials` times with seeds
// cfg.Seed, cfg.Seed+1, ... and returns the result with the lowest
// codelength. trials < 1 is treated as 1.
func RunSequentialTrials(g *Graph, cfg SequentialConfig, trials int) *SequentialResult {
	if trials < 1 {
		trials = 1
	}
	var best *SequentialResult
	for t := 0; t < trials; t++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(t)
		res := RunSequential(g, c)
		if best == nil || res.Codelength < best.Codelength {
			best = res
		}
	}
	return best
}

// RunDistributedTrials runs the distributed algorithm `trials` times
// with consecutive seeds and returns the result with the lowest
// codelength. trials < 1 is treated as 1.
func RunDistributedTrials(g *Graph, cfg DistributedConfig, trials int) *DistributedResult {
	if trials < 1 {
		trials = 1
	}
	var best *DistributedResult
	for t := 0; t < trials; t++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(t)
		res := RunDistributed(g, c)
		if best == nil || res.Codelength < best.Codelength {
			best = res
		}
	}
	return best
}

// RunDirectedTrials runs directed Infomap `trials` times with
// consecutive seeds and returns the best result.
func RunDirectedTrials(g *DirectedGraph, cfg DirectedConfig, trials int) *DirectedResult {
	if trials < 1 {
		trials = 1
	}
	var best *DirectedResult
	for t := 0; t < trials; t++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(t)
		res := RunDirected(g, c)
		if best == nil || res.Codelength < best.Codelength {
			best = res
		}
	}
	return best
}

// Citations: the directed-graph extension in action. Builds a
// citation-network-like DAG (papers cite earlier papers, mostly within
// their field), runs directed Infomap on it, and contrasts the result
// with running undirected Infomap on the symmetrized graph — showing
// why citation flow direction matters.
//
//	go run ./examples/citations
package main

import (
	"fmt"

	"dinfomap"
	"dinfomap/internal/gen"
)

func main() {
	// 4000 papers in 25 fields, 8 references each, 15% cross-field.
	dg, truth := gen.DirectedCitation(2718, 4000, 25, 8, 0.15)
	fmt.Printf("citation network: %d papers, %d citations\n", dg.NumVertices(), dg.NumArcs())

	// Directed Infomap: random surfer over citations with teleportation.
	dres := dinfomap.RunDirected(dg, dinfomap.DirectedConfig{Seed: 1})
	fmt.Printf("\ndirected Infomap:\n")
	fmt.Printf("  fields found: %d (planted 25)\n", dres.NumModules)
	fmt.Printf("  codelength:   %.4f bits (initial %.4f)\n",
		dres.Codelength, dres.InitialCodelength)
	fmt.Printf("  flow:         %d power iterations to stationarity\n", dres.FlowIterations)
	fmt.Printf("  NMI vs planted fields: %.3f\n", dinfomap.NMI(dres.Communities, truth))

	// The naive alternative: drop directions, run undirected Infomap.
	ug := dinfomap.Undirected(dg)
	ures := dinfomap.RunSequential(ug, dinfomap.SequentialConfig{Seed: 1})
	fmt.Printf("\nundirected Infomap on the symmetrized graph:\n")
	fmt.Printf("  fields found: %d\n", ures.NumModules)
	fmt.Printf("  NMI vs planted fields: %.3f\n", dinfomap.NMI(ures.Communities, truth))

	// Evaluate both partitions under the DIRECTED objective: the
	// direction-aware optimizer should compress citation flow better.
	ld := dinfomap.DirectedCodelengthOf(dg, dres.Communities, 0)
	lu := dinfomap.DirectedCodelengthOf(dg, ures.Communities, 0)
	fmt.Printf("\ndirected codelength of each partition (lower = better):\n")
	fmt.Printf("  directed optimizer:   %.4f bits\n", ld)
	fmt.Printf("  symmetrized optimizer: %.4f bits\n", lu)
}

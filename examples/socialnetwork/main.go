// Socialnetwork: detect friend circles in a LiveJournal-like social
// graph (power-law degrees, planted friend circles of skewed sizes) and
// study how the simulated cluster size affects the distributed
// algorithm: modeled time, result stability across p, and the Infomap
// vs Louvain objectives.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"time"

	"dinfomap"
)

func main() {
	// A social network: power-law popularity (celebrities = hubs),
	// 200 friend circles of skewed sizes, 30% of friendships crossing
	// circles.
	pg := dinfomap.GeneratePlanted(dinfomap.PlantedConfig{
		N:           20000,
		NumComms:    200,
		AvgDegree:   14,
		Mixing:      0.3,
		SizeSkew:    0.4,
		DegreeGamma: 2.3,
	}, 2026)
	g := pg.Graph
	fmt.Printf("social network: %d members, %d friendships\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("degrees: %s\n\n", dinfomap.ComputeDegreeStats(g))

	// Sweep simulated cluster sizes, as the paper's scalability study
	// does (Figure 9), and check the partitions stay stable.
	fmt.Printf("%4s %10s %14s %14s %12s %12s\n",
		"p", "modules", "codelength", "modeled", "NMI vs truth", "host wall")
	for _, p := range []int{2, 4, 8, 16} {
		start := time.Now()
		res := dinfomap.RunDistributed(g, dinfomap.DistributedConfig{P: p, Seed: 3})
		fmt.Printf("%4d %10d %14.4f %14s %12.2f %12s\n",
			p, res.NumModules, res.Codelength,
			res.TotalModeled().Round(time.Microsecond),
			dinfomap.NMI(res.Communities, pg.Truth),
			time.Since(start).Round(time.Millisecond))
	}

	// Compare objective functions: Infomap's map equation vs Louvain's
	// modularity on the same graph.
	seq := dinfomap.RunSequential(g, dinfomap.SequentialConfig{Seed: 3})
	lv := dinfomap.RunLouvain(g, dinfomap.LouvainConfig{Seed: 3})
	fmt.Printf("\nobjective comparison:\n")
	fmt.Printf("  Infomap:  %5d modules, L=%.4f bits, Q=%.4f, NMI vs truth %.2f\n",
		seq.NumModules, seq.Codelength, dinfomap.Modularity(g, seq.Communities),
		dinfomap.NMI(seq.Communities, pg.Truth))
	fmt.Printf("  Louvain:  %5d modules, L=%.4f bits, Q=%.4f, NMI vs truth %.2f\n",
		lv.NumCommunities, dinfomap.CodelengthOf(g, lv.Communities), lv.Modularity,
		dinfomap.NMI(lv.Communities, pg.Truth))
	fmt.Printf("  (Infomap minimizes L; Louvain maximizes Q — each wins its own game)\n")
}

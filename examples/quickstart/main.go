// Quickstart: generate a graph with known community structure, run the
// distributed Infomap algorithm, and compare against the sequential
// reference and the planted ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dinfomap"
)

func main() {
	// A social-network-like graph: 50 communities, power-law degrees,
	// 20% of each vertex's edges leaving its community.
	pg := dinfomap.GeneratePlanted(dinfomap.PlantedConfig{
		N:           5000,
		NumComms:    50,
		AvgDegree:   12,
		Mixing:      0.2,
		DegreeGamma: 2.5,
	}, 42)
	g := pg.Graph
	fmt.Printf("graph: %d vertices, %d edges, %s\n",
		g.NumVertices(), g.NumEdges(), dinfomap.ComputeDegreeStats(g))

	// Distributed Infomap on 8 simulated ranks.
	dist := dinfomap.RunDistributed(g, dinfomap.DistributedConfig{P: 8, Seed: 1})
	fmt.Printf("\ndistributed Infomap (p=8):\n")
	fmt.Printf("  modules:    %d (planted: 50)\n", dist.NumModules)
	fmt.Printf("  codelength: %.4f bits (down from %.4f)\n",
		dist.Codelength, dist.InitialCodelength)
	fmt.Printf("  modeled:    %v cluster time, %d bytes max-rank traffic\n",
		dist.TotalModeled(), dist.MaxRankBytes)

	// Sequential reference.
	seq := dinfomap.RunSequential(g, dinfomap.SequentialConfig{Seed: 1})
	fmt.Printf("\nsequential Infomap:\n")
	fmt.Printf("  modules:    %d\n", seq.NumModules)
	fmt.Printf("  codelength: %.4f bits\n", seq.Codelength)

	// Quality: distributed vs sequential (the paper's Table 2) and vs
	// the planted ground truth.
	q := dinfomap.ComparePartitions(dist.Communities, seq.Communities)
	fmt.Printf("\nquality:\n")
	fmt.Printf("  dist vs seq:   %v\n", q)
	fmt.Printf("  dist vs truth: NMI=%.2f\n", dinfomap.NMI(dist.Communities, pg.Truth))
	fmt.Printf("  seq  vs truth: NMI=%.2f\n", dinfomap.NMI(seq.Communities, pg.Truth))
}

// Compare: run all four community detection algorithms in this
// repository on the same ground-truth graph and print a scoreboard —
// quality (NMI vs truth, codelength, modularity) and cost. This mirrors
// the paper's positioning of its algorithm against RelaxMap, GossipMap,
// and the Louvain family.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"time"

	"dinfomap"
)

func main() {
	pg := dinfomap.GeneratePlanted(dinfomap.PlantedConfig{
		N:           8000,
		NumComms:    64,
		AvgDegree:   12,
		Mixing:      0.25,
		DegreeGamma: 2.4,
	}, 99)
	g := pg.Graph
	fmt.Printf("benchmark graph: %d vertices, %d edges, 64 planted communities (mu=0.25)\n\n",
		g.NumVertices(), g.NumEdges())

	type row struct {
		name    string
		comms   []int
		modules int
		wall    time.Duration
	}
	var rows []row

	t0 := time.Now()
	seq := dinfomap.RunSequential(g, dinfomap.SequentialConfig{Seed: 5})
	rows = append(rows, row{"sequential Infomap", seq.Communities, seq.NumModules, time.Since(t0)})

	t0 = time.Now()
	dist := dinfomap.RunDistributed(g, dinfomap.DistributedConfig{P: 8, Seed: 5})
	rows = append(rows, row{"distributed Infomap (p=8)", dist.Communities, dist.NumModules, time.Since(t0)})

	t0 = time.Now()
	rlx := dinfomap.RunRelax(g, dinfomap.RelaxConfig{Workers: 8, Seed: 5})
	rows = append(rows, row{"RelaxMap-style (8 workers)", rlx.Communities, rlx.NumModules, time.Since(t0)})

	t0 = time.Now()
	gos := dinfomap.RunGossip(g, dinfomap.GossipConfig{P: 8, Seed: 5})
	rows = append(rows, row{"GossipMap-style (p=8)", gos.Communities, gos.NumModules, time.Since(t0)})

	t0 = time.Now()
	lv := dinfomap.RunLouvain(g, dinfomap.LouvainConfig{Seed: 5})
	rows = append(rows, row{"Louvain", lv.Communities, lv.NumCommunities, time.Since(t0)})

	fmt.Printf("%-28s %8s %10s %12s %8s %10s\n",
		"algorithm", "modules", "NMI", "codelength", "Q", "host wall")
	for _, r := range rows {
		fmt.Printf("%-28s %8d %10.3f %12.4f %8.3f %10s\n",
			r.name, r.modules,
			dinfomap.NMI(r.comms, pg.Truth),
			dinfomap.CodelengthOf(g, r.comms),
			dinfomap.Modularity(g, r.comms),
			r.wall.Round(time.Millisecond))
	}
	fmt.Println("\nNMI is against the planted ground truth; lower codelength and")
	fmt.Println("higher modularity are better. Host wall times share one machine")
	fmt.Println("and are not the paper's distributed timings (see EXPERIMENTS.md).")
}

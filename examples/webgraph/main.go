// Webgraph: the scenario that motivates the paper — community detection
// on a hub-heavy web crawl. Shows why 1D partitioning breaks on
// scale-free graphs and how delegate partitioning fixes the balance
// (Figures 1, 6, 7), then clusters the graph with both partition-aware
// configurations.
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"time"

	"dinfomap"
)

func main() {
	// A UK-2005-like web crawl stand-in: dense hubs, power-law tail.
	d, err := dinfomap.LookupDataset("uk-2005")
	if err != nil {
		panic(err)
	}
	g, _ := d.Generate()
	st := dinfomap.ComputeDegreeStats(g)
	fmt.Printf("web crawl stand-in: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("degree distribution: %s\n", st)
	fmt.Printf("-> the top 1%% of pages carry %.0f%% of all links: classic scale-free hubs\n\n",
		100*st.HubFrac)

	// The partitioning comparison of Figures 6-7.
	const p = 16
	oneD := dinfomap.Analyze1D(g, p)
	del := dinfomap.AnalyzeDelegate(g, p)
	fmt.Printf("partitioning %d ranks:\n", p)
	fmt.Printf("  1D block:       %7d..%7d arcs/rank (imbalance %.2fx), %5d..%5d ghosts\n",
		oneD.MinEdges, oneD.MaxEdges, oneD.EdgeImbalance, oneD.MinGhosts, oneD.MaxGhosts)
	fmt.Printf("  delegate:       %7d..%7d arcs/rank (imbalance %.2fx), %5d..%5d ghosts, %d hubs duplicated\n\n",
		del.MinEdges, del.MaxEdges, del.EdgeImbalance, del.MinGhosts, del.MaxGhosts, del.NumHubs)

	// Cluster with the delegate-partitioned distributed algorithm.
	start := time.Now()
	res := dinfomap.RunDistributed(g, dinfomap.DistributedConfig{P: p, Seed: 7})
	fmt.Printf("distributed Infomap (p=%d):\n", p)
	fmt.Printf("  %d modules, codelength %.4f bits (initial %.4f)\n",
		res.NumModules, res.Codelength, res.InitialCodelength)
	fmt.Printf("  modeled cluster time %v, host wall %v\n",
		res.TotalModeled().Round(time.Microsecond), time.Since(start).Round(time.Millisecond))

	// The biggest communities.
	sizes := map[int]int{}
	for _, c := range res.Communities {
		sizes[c]++
	}
	top := topK(sizes, 5)
	fmt.Printf("  largest communities: %v vertices\n", top)
}

func topK(sizes map[int]int, k int) []int {
	var vals []int
	for _, s := range sizes {
		vals = append(vals, s)
	}
	// selection of top k (small k, no need to sort everything)
	var top []int
	for i := 0; i < k && len(vals) > 0; i++ {
		best := 0
		for j, v := range vals {
			if v > vals[best] {
				best = j
			}
		}
		top = append(top, vals[best])
		vals[best] = vals[len(vals)-1]
		vals = vals[:len(vals)-1]
	}
	return top
}

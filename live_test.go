package dinfomap

// Integration test for the live observability surface: a distributed
// run serving /debug/dinfomap/events (SSE) and /debug/dinfomap/status
// while its ranks are iterating, observed through the public API the
// way cmd/dinfomap wires it up.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type sseFrame struct {
	event string
	data  string
}

// parseSSE splits a complete SSE body into (event, data) frames.
func parseSSE(t *testing.T, body string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for _, chunk := range strings.Split(body, "\n\n") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		var f sseFrame
		for _, line := range strings.Split(chunk, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("malformed SSE line %q", line)
			}
		}
		frames = append(frames, f)
	}
	return frames
}

func TestLiveEventStreamDuringRun(t *testing.T) {
	const p = 4
	pg := GeneratePlanted(PlantedConfig{
		N: 4000, NumComms: 40, AvgDegree: 8, Mixing: 0.25,
	}, 11)

	j := NewRunJournal(p)
	mux := http.NewServeMux()
	RegisterRunDebugHandlers(mux, j)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// A sentinel tap tells us when the ranks are provably mid-run, so
	// the HTTP client below connects to a live stream, not a finished
	// one. Taps never block ranks, so leaving it undrained is safe.
	sentinel := j.Subscribe(1)

	done := make(chan *DistributedResult, 1)
	go func() { done <- RunDistributed(pg.Graph, DistributedConfig{P: p, Seed: 7, Journal: j}) }()

	if _, ok := <-sentinel.Events(); !ok {
		t.Fatal("journal finished before emitting any event")
	}
	j.Unsubscribe(sentinel)

	// Connect to the SSE stream mid-run.
	resp, err := http.Get(srv.URL + "/debug/dinfomap/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("closing SSE body: %v", err)
		}
	}()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	// Snapshot progress mid-run on the status endpoint.
	stResp, err := http.Get(srv.URL + "/debug/dinfomap/status")
	if err != nil {
		t.Fatal(err)
	}
	var midStatus struct {
		Schema string `json:"schema"`
		Ranks  []struct {
			Rank   int    `json:"rank"`
			Events int64  `json:"events"`
			Phase  string `json:"phase"`
		} `json:"ranks"`
	}
	if err := json.NewDecoder(stResp.Body).Decode(&midStatus); err != nil {
		t.Fatal(err)
	}
	if err := stResp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if midStatus.Schema != "dinfomap-status/v1" {
		t.Fatalf("status schema = %q", midStatus.Schema)
	}
	if len(midStatus.Ranks) != p {
		t.Fatalf("status has %d ranks, want %d", len(midStatus.Ranks), p)
	}

	// The stream ends when the run finishes; read it to completion.
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.NumModules < 2 {
		t.Fatalf("degenerate run: %d modules", res.NumModules)
	}

	frames := parseSSE(t, string(body))
	if len(frames) < 2 {
		t.Fatalf("stream has %d frames, want at least hello+status", len(frames))
	}
	if frames[0].event != "hello" {
		t.Fatalf("first frame is %q, want hello", frames[0].event)
	}
	var hello struct {
		Ranks int `json:"ranks"`
	}
	if err := json.Unmarshal([]byte(frames[0].data), &hello); err != nil {
		t.Fatalf("hello payload: %v", err)
	}
	if hello.Ranks != p {
		t.Fatalf("hello announces %d ranks, want %d", hello.Ranks, p)
	}

	last := frames[len(frames)-1]
	if last.event != "status" {
		t.Fatalf("last frame is %q, want status", last.event)
	}
	var final struct {
		Schema   string `json:"schema"`
		Finished bool   `json:"finished"`
		Events   int64  `json:"events"`
		Ranks    []struct {
			Events int64 `json:"events"`
		} `json:"ranks"`
	}
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("final status payload: %v", err)
	}
	if final.Schema != "dinfomap-status/v1" || !final.Finished {
		t.Fatalf("final status = %+v, want finished dinfomap-status/v1", final)
	}
	if len(final.Ranks) != p {
		t.Fatalf("final status has %d ranks, want %d", len(final.Ranks), p)
	}
	for r, rs := range final.Ranks {
		if rs.Events == 0 {
			t.Errorf("final status: rank %d emitted no events", r)
		}
	}

	// Every span frame between hello and status must be well-formed, and
	// every rank must appear (the connection landed mid-run, with full
	// synchronized sweeps still ahead).
	lastSeq := map[int]int64{}
	spanRanks := map[int]bool{}
	for _, f := range frames[1 : len(frames)-1] {
		if f.event != "span" {
			t.Fatalf("unexpected frame %q mid-stream", f.event)
		}
		var ev struct {
			Rank    int    `json:"rank"`
			Seq     int64  `json:"seq"`
			Stage   int    `json:"stage"`
			Phase   string `json:"phase"`
			StartNs int64  `json:"start_ns"`
			EndNs   int64  `json:"end_ns"`
		}
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("span payload %q: %v", f.data, err)
		}
		if ev.Rank < 0 || ev.Rank >= p {
			t.Fatalf("span from rank %d, want 0..%d", ev.Rank, p-1)
		}
		if ev.Seq <= lastSeq[ev.Rank] {
			t.Fatalf("rank %d seq %d not increasing (last %d)", ev.Rank, ev.Seq, lastSeq[ev.Rank])
		}
		lastSeq[ev.Rank] = ev.Seq
		if ev.Phase == "" || ev.Phase == "Unknown" {
			t.Fatalf("span with phase %q", ev.Phase)
		}
		if ev.EndNs < ev.StartNs {
			t.Fatalf("span ends at %d before start %d", ev.EndNs, ev.StartNs)
		}
		if ev.Stage != 1 && ev.Stage != 2 {
			t.Fatalf("span with stage %d", ev.Stage)
		}
		spanRanks[ev.Rank] = true
	}
	for r := 0; r < p; r++ {
		if !spanRanks[r] {
			t.Errorf("no live span observed from rank %d", r)
		}
	}

	// After the run, the post-hoc journal and the final status agree.
	if got := int64(j.NumEvents()); got != final.Events {
		t.Fatalf("journal holds %d events, final status reports %d", got, final.Events)
	}
}

package dinfomap

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 600, NumComms: 12, AvgDegree: 8, Mixing: 0.15,
	}, 42)
	g := pg.Graph

	seq := RunSequential(g, SequentialConfig{Seed: 1})
	dist := RunDistributed(g, DistributedConfig{P: 4, Seed: 1})
	if seq.NumModules < 2 || dist.NumModules < 2 {
		t.Fatalf("degenerate results: seq=%d dist=%d", seq.NumModules, dist.NumModules)
	}
	q := ComparePartitions(dist.Communities, seq.Communities)
	if q.NMI < 0.7 {
		t.Fatalf("distributed vs sequential NMI = %.3f", q.NMI)
	}
	if NMI(dist.Communities, pg.Truth) < 0.7 {
		t.Fatalf("distributed vs truth NMI too low")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 8, Mixing: 0.2,
	}, 7)
	g := pg.Graph
	if r := RunLouvain(g, LouvainConfig{Seed: 1}); r.Modularity < 0.3 {
		t.Errorf("Louvain Q = %.3f", r.Modularity)
	}
	if r := RunRelax(g, RelaxConfig{Workers: 2, Seed: 1}); r.NumModules < 2 {
		t.Errorf("Relax modules = %d", r.NumModules)
	}
	if r := RunGossip(g, GossipConfig{P: 2, Seed: 1}); r.NumModules < 2 {
		t.Errorf("Gossip modules = %d", r.NumModules)
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Fatalf("round trip lost edges: %d", g2.NumEdges())
	}
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 2.5)
	if b.Build().TotalWeight() != 2.5 {
		t.Fatal("builder weight lost")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	g := GeneratePowerLaw(3, 2000, 2.1, 2, 200)
	st := ComputeDegreeStats(g)
	if st.Max < 20 {
		t.Errorf("power-law max degree = %d", st.Max)
	}
	ba := GenerateBarabasiAlbert(5, 500, 3)
	if ba.NumVertices() != 500 {
		t.Errorf("BA vertices = %d", ba.NumVertices())
	}
}

func TestPublicAPIDatasets(t *testing.T) {
	names := Datasets()
	if len(names) != 9 {
		t.Fatalf("Datasets() returned %d names, want 9", len(names))
	}
	d, err := LookupDataset("amazon")
	if err != nil {
		t.Fatal(err)
	}
	g, truth := d.Generate()
	if g.NumEdges() == 0 || truth == nil {
		t.Fatal("amazon stand-in did not generate")
	}
	if _, err := LookupDataset("bogus"); err == nil {
		t.Fatal("LookupDataset accepted bogus name")
	}
}

func TestPublicAPIPartitionAnalysis(t *testing.T) {
	g := GeneratePowerLaw(11, 3000, 2.0, 2, 300)
	oneD := Analyze1D(g, 8)
	del := AnalyzeDelegate(g, 8)
	if del.EdgeImbalance >= oneD.EdgeImbalance {
		t.Errorf("delegate imbalance %.2f not better than 1D %.2f",
			del.EdgeImbalance, oneD.EdgeImbalance)
	}
}

func TestPublicAPIMetrics(t *testing.T) {
	g := FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3},
	})
	comm := []int{0, 0, 0, 1, 1, 1}
	if q := Modularity(g, comm); math.Abs(q-5.0/14) > 1e-9 {
		t.Errorf("Modularity = %v", q)
	}
	if l := CodelengthOf(g, comm); l <= 0 {
		t.Errorf("CodelengthOf = %v", l)
	}
}

// Command experiments regenerates the paper's tables and figures on
// the synthetic stand-in datasets.
//
// Usage:
//
//	experiments -exp all [-scale 0.3] [-seed 1]
//	experiments -exp fig9 -datasets uk-2005,friendster -ps 4,8,16
//	experiments -exp ablations
//	experiments -exp all -scale 0.3 -json results
//
// Experiments: table1 fig4 fig5 table2 fig6 fig7 fig8 fig9 fig10
// table3 ablations comms waitstates all, plus the measured-wall
// experiments asyncfrontier and speedup (proc-mesh runs; excluded from
// "all" because their numbers depend on the host's real clock, not the
// deterministic cost model). Output is the same rows/series the paper
// reports, as fixed-width text tables; with -json DIR each experiment
// additionally writes a machine-readable sibling DIR/<id>.json so
// trajectory tooling can consume the numbers without parsing the text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dinfomap/internal/experiments"
)

// envelope wraps one experiment's structured rows for the JSON sibling
// files. Rows is the same data the Format* functions render as text.
type envelope struct {
	Schema     string  `json:"schema"`
	Experiment string  `json:"experiment"`
	Scale      float64 `json:"scale"`
	Seed       uint64  `json:"seed"`
	Rows       any     `json:"rows"`
}

// envelopeSchema tags the experiment JSON siblings; see obs.ReportSchema
// for the run-report counterpart.
const envelopeSchema = "dinfomap-experiment/v1"

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1 fig4 fig5 table2 fig6 fig7 fig8 fig9 fig10 table3 ablations comms waitstates asyncfrontier speedup all)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		seed     = flag.Uint64("seed", 1, "random seed offset")
		datasets = flag.String("datasets", "", "comma-separated dataset override")
		psFlag   = flag.String("ps", "", "comma-separated processor counts override")
		p        = flag.Int("p", 0, "single processor count (fig4/fig5/table2/table3)")
		jsonDir  = flag.String("json", "", "also write machine-readable <dir>/<experiment>.json siblings")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof listener:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	o := experiments.Options{Scale: *scale, Seed: *seed}
	ds := splitList(*datasets)
	ps, err := parseInts(*psFlag)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout

	// run executes one experiment, renders its text table, and returns
	// the structured rows for the JSON sibling (nil = nothing to save).
	run := func(id string) (any, error) {
		switch id {
		case "table1":
			rows, err := experiments.RunTable1(o)
			if err != nil {
				return nil, err
			}
			experiments.FormatTable1(w, rows)
			return rows, nil
		case "fig4":
			rs, err := experiments.RunFig4(o, defaultP(*p, 4), ds)
			if err != nil {
				return nil, err
			}
			experiments.FormatFig4(w, rs)
			return rs, nil
		case "fig5":
			rs, err := experiments.RunFig5(o, defaultP(*p, 4), ds)
			if err != nil {
				return nil, err
			}
			experiments.FormatFig5(w, rs)
			return rs, nil
		case "table2":
			rows, err := experiments.RunTable2(o, defaultP(*p, 4), ds)
			if err != nil {
				return nil, err
			}
			experiments.FormatTable2(w, rows)
			return rows, nil
		case "fig6", "fig7":
			rows, err := experiments.RunBalance(o, ds, ps)
			if err != nil {
				return nil, err
			}
			if id == "fig6" {
				experiments.FormatFig6(w, rows)
			} else {
				experiments.FormatFig7(w, rows)
			}
			return rows, nil
		case "fig8":
			dataset := "uk-2005"
			if len(ds) > 0 {
				dataset = ds[0]
			}
			bs, err := experiments.RunFig8(o, dataset, ps)
			if err != nil {
				return nil, err
			}
			experiments.FormatFig8(w, dataset, bs)
			return bs, nil
		case "fig9":
			rows, err := experiments.RunFig9(o, ds, ps)
			if err != nil {
				return nil, err
			}
			experiments.FormatFig9(w, rows)
			return rows, nil
		case "fig10":
			rows, err := experiments.RunFig10(o, ds, ps)
			if err != nil {
				return nil, err
			}
			experiments.FormatFig10(w, rows)
			return rows, nil
		case "table3":
			rows, err := experiments.RunTable3(o, ds, defaultP(*p, 16))
			if err != nil {
				return nil, err
			}
			experiments.FormatTable3(w, rows)
			return rows, nil
		case "ablations":
			return runAblations(o, w, defaultP(*p, 8))
		case "comms":
			rows, err := experiments.RunComms(o, ds, ps)
			if err != nil {
				return nil, err
			}
			experiments.FormatComms(w, rows)
			return rows, nil
		case "waitstates":
			rows, err := experiments.RunWaitStates(o, ds, ps)
			if err != nil {
				return nil, err
			}
			experiments.FormatWaitStates(w, rows)
			return rows, nil
		case "asyncfrontier":
			dataset := ""
			if len(ds) > 0 {
				dataset = ds[0]
			}
			rows, err := experiments.RunAsyncFrontier(o, dataset, *p, ps)
			if err != nil {
				return nil, err
			}
			experiments.FormatAsyncFrontier(w, rows)
			return rows, nil
		case "speedup":
			dataset := ""
			if len(ds) > 0 {
				dataset = ds[0]
			}
			res, err := experiments.RunSpeedup(o, dataset, ps)
			if err != nil {
				return nil, err
			}
			experiments.FormatSpeedup(w, res)
			return res, nil
		default:
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "fig4", "fig5", "table2", "fig6", "fig7",
			"fig8", "fig9", "fig10", "table3", "ablations", "comms", "waitstates"}
	}
	for _, id := range ids {
		rows, err := run(id)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if *jsonDir != "" && rows != nil {
			env := envelope{
				Schema: envelopeSchema, Experiment: id,
				Scale: *scale, Seed: *seed, Rows: rows,
			}
			if err := writeJSONSibling(*jsonDir, id, env); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
		}
	}

	if *memProfile != "" {
		runtime.GC()
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}
}

// writeJSONSibling writes payload to dir/id.json, creating dir if
// needed; flush/close errors are reported exactly once.
func writeJSONSibling(dir, id string, payload any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(payload)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// ablationResult is one ablation's structured rows in the JSON sibling.
type ablationResult struct {
	Title   string                    `json:"title"`
	Dataset string                    `json:"dataset"`
	Rows    []experiments.AblationRow `json:"rows"`
}

func runAblations(o experiments.Options, w *os.File, p int) (any, error) {
	type abl struct {
		title string
		fn    func(experiments.Options, string, int) ([]experiments.AblationRow, error)
		ds    string
	}
	var results []ablationResult
	for _, a := range []abl{
		{"Ablation: delegate threshold d_high (uk-2005)", experiments.RunAblationThreshold, "uk-2005"},
		{"Ablation: minimum-label anti-bouncing (dblp)", experiments.RunAblationMinLabel, "dblp"},
		{"Ablation: isSent Module_Info dedup (amazon)", experiments.RunAblationDedup, "amazon"},
		{"Ablation: partition rebalancing (uk-2005)", experiments.RunAblationRebalance, "uk-2005"},
		{"Ablation: exact vs local delta-L delegate moves (youtube)", experiments.RunAblationApproxDelegates, "youtube"},
		{"Ablation: cross-boundary move damping (ndweb)", experiments.RunAblationDamping, "ndweb"},
	} {
		rows, err := a.fn(o, a.ds, p)
		if err != nil {
			return nil, err
		}
		experiments.FormatAblation(w, a.title, rows)
		results = append(results, ablationResult{Title: a.title, Dataset: a.ds, Rows: rows})
	}
	return results, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func defaultP(p, def int) int {
	if p > 0 {
		return p
	}
	return def
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// Command experiments regenerates the paper's tables and figures on
// the synthetic stand-in datasets.
//
// Usage:
//
//	experiments -exp all [-scale 0.3] [-seed 1]
//	experiments -exp fig9 -datasets uk-2005,friendster -ps 4,8,16
//	experiments -exp ablations
//
// Experiments: table1 fig4 fig5 table2 fig6 fig7 fig8 fig9 fig10
// table3 ablations all. Output is the same rows/series the paper
// reports, as fixed-width text tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dinfomap/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1 fig4 fig5 table2 fig6 fig7 fig8 fig9 fig10 table3 ablations all)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		seed     = flag.Uint64("seed", 1, "random seed offset")
		datasets = flag.String("datasets", "", "comma-separated dataset override")
		psFlag   = flag.String("ps", "", "comma-separated processor counts override")
		p        = flag.Int("p", 0, "single processor count (fig4/fig5/table2/table3)")
	)
	flag.Parse()

	o := experiments.Options{Scale: *scale, Seed: *seed}
	ds := splitList(*datasets)
	ps, err := parseInts(*psFlag)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout

	run := func(id string) error {
		switch id {
		case "table1":
			rows, err := experiments.RunTable1(o)
			if err != nil {
				return err
			}
			experiments.FormatTable1(w, rows)
		case "fig4":
			rs, err := experiments.RunFig4(o, defaultP(*p, 4), ds)
			if err != nil {
				return err
			}
			experiments.FormatFig4(w, rs)
		case "fig5":
			rs, err := experiments.RunFig5(o, defaultP(*p, 4), ds)
			if err != nil {
				return err
			}
			experiments.FormatFig5(w, rs)
		case "table2":
			rows, err := experiments.RunTable2(o, defaultP(*p, 4), ds)
			if err != nil {
				return err
			}
			experiments.FormatTable2(w, rows)
		case "fig6", "fig7":
			rows, err := experiments.RunBalance(o, ds, ps)
			if err != nil {
				return err
			}
			if id == "fig6" {
				experiments.FormatFig6(w, rows)
			} else {
				experiments.FormatFig7(w, rows)
			}
		case "fig8":
			dataset := "uk-2005"
			if len(ds) > 0 {
				dataset = ds[0]
			}
			bs, err := experiments.RunFig8(o, dataset, ps)
			if err != nil {
				return err
			}
			experiments.FormatFig8(w, dataset, bs)
		case "fig9":
			rows, err := experiments.RunFig9(o, ds, ps)
			if err != nil {
				return err
			}
			experiments.FormatFig9(w, rows)
		case "fig10":
			rows, err := experiments.RunFig10(o, ds, ps)
			if err != nil {
				return err
			}
			experiments.FormatFig10(w, rows)
		case "table3":
			rows, err := experiments.RunTable3(o, ds, defaultP(*p, 16))
			if err != nil {
				return err
			}
			experiments.FormatTable3(w, rows)
		case "ablations":
			return runAblations(o, w, defaultP(*p, 8))
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "fig4", "fig5", "table2", "fig6", "fig7",
			"fig8", "fig9", "fig10", "table3", "ablations"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
	}
}

func runAblations(o experiments.Options, w *os.File, p int) error {
	type abl struct {
		title string
		fn    func(experiments.Options, string, int) ([]experiments.AblationRow, error)
		ds    string
	}
	for _, a := range []abl{
		{"Ablation: delegate threshold d_high (uk-2005)", experiments.RunAblationThreshold, "uk-2005"},
		{"Ablation: minimum-label anti-bouncing (dblp)", experiments.RunAblationMinLabel, "dblp"},
		{"Ablation: isSent Module_Info dedup (amazon)", experiments.RunAblationDedup, "amazon"},
		{"Ablation: partition rebalancing (uk-2005)", experiments.RunAblationRebalance, "uk-2005"},
		{"Ablation: exact vs local delta-L delegate moves (youtube)", experiments.RunAblationApproxDelegates, "youtube"},
		{"Ablation: cross-boundary move damping (ndweb)", experiments.RunAblationDamping, "ndweb"},
	} {
		rows, err := a.fn(o, a.ds, p)
		if err != nil {
			return err
		}
		experiments.FormatAblation(w, a.title, rows)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func defaultP(p, def int) int {
	if p > 0 {
		return p
	}
	return def
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

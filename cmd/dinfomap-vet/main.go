// Command dinfomap-vet runs dinfomap's custom static-analysis suite:
// the determinism, numeric-safety, and rank-isolation invariants that
// the distributed algorithm's quality claims depend on, encoded as
// machine-checked analyzers (see internal/analysis).
//
// Standalone:
//
//	dinfomap-vet ./...
//	dinfomap-vet -json ./...   emit diagnostics as JSON for tooling
//	dinfomap-vet -stale ./...  also report //dinfomap:<key> comments
//	                           that suppressed nothing (stale or
//	                           typo'd justifications)
//
// As a go vet tool (same analyzers, integrated caching and test files
// excluded either way):
//
//	go build -o bin/dinfomap-vet ./cmd/dinfomap-vet
//	go vet -vettool=bin/dinfomap-vet ./...
//
// Exit status: 0 when the tree is clean, 2 when findings were
// reported, 1 on driver errors. Every finding must be fixed or carry
// a //dinfomap:<key> justification comment; CI runs the suite at full
// strictness, with -stale, and uploads the -json findings artifact.
package main

import (
	"dinfomap/internal/analysis"
	"dinfomap/internal/analysis/all"
)

func main() {
	analysis.Main(all.Analyzers())
}

// Command dinfomap-analyze turns a dinfomap run report into a ranked
// bottleneck analysis:
//
//	dinfomap -p 4 -dataset amazon -metrics run.json
//	dinfomap-analyze run.json
//
// It prints the cross-rank critical path (which rank gated which
// stretch of the run, and in which phase), the per-rank lost-time
// straggler table (late-sender / late-receiver / barrier-skew /
// imbalance attribution), and a comparison of the measured blocked time
// against the alpha-beta modeled communication time per message kind —
// the measured counterpart of the model the experiments report.
//
// The wait-state sections need a report from a journaled run (one
// written via -metrics, or core.Config.Journal set); on a report
// without them the tool still re-checks conservation and prints the
// modeled communication table.
//
// Reports from multi-process runs additionally carry the launcher's
// per-rank clock-offset estimates; the tool prints them and checks the
// alignment residual of every rank against -max-clock-skew, so a report
// whose cross-process wait attribution rests on a shaky clock alignment
// fails loudly instead of quietly misattributing blame.
//
// Exit status: 0 clean, 1 conservation violation between the per-kind
// splits and the totals or clock residual above -max-clock-skew,
// 2 usage, I/O, or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dinfomap/internal/obs"
	"dinfomap/internal/trace"
)

func main() {
	var (
		topN    = flag.Int("top", 8, "critical-path segments and straggler rows to print")
		jsonOut = flag.Bool("json", false, "emit the analysis as JSON instead of text")
		maxSkew = flag.Duration("max-clock-skew", 50*time.Millisecond, "fail (exit 1) when any rank's clock-alignment residual exceeds this")
		version = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dinfomap-analyze [flags] <run-report.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(obs.ReadBuild().String())
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	rep, err := obs.ParseReport(data)
	if err != nil {
		fatal(err)
	}

	a := analyze(rep, *maxSkew)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			fatal(err)
		}
	} else {
		a.writeText(os.Stdout, *topN)
	}
	code := 0
	if !a.ConservationOK {
		fmt.Fprintln(os.Stderr, "dinfomap-analyze: per-kind communication splits do not sum to the totals")
		code = 1
	}
	if !a.ClockAlignmentOK {
		fmt.Fprintf(os.Stderr, "dinfomap-analyze: clock-alignment residual exceeds -max-clock-skew=%v; cross-process wait attribution is unreliable\n", *maxSkew)
		code = 1
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dinfomap-analyze:", err)
	os.Exit(2)
}

// pathSegment is one critical-path segment ranked for the bottleneck
// report.
type pathSegment struct {
	Rank          int    `json:"rank"`
	StartWallNs   int64  `json:"start_wall_ns"`
	DurWallNs     int64  `json:"dur_wall_ns"`
	Barrier       int    `json:"barrier_seq"`
	DominantPhase string `json:"dominant_phase,omitempty"`
	// PathFraction is this segment's share of the whole path.
	PathFraction float64 `json:"path_fraction"`
}

// kindModel compares measured blocked time against the alpha-beta
// modeled communication time for one message kind.
type kindModel struct {
	Kind string `json:"kind"`
	// ModeledNs = alpha*(msgs_sent+collective_msgs) +
	// beta*(bytes_sent+collective_bytes), summed over ranks.
	ModeledNs int64 `json:"modeled_ns"`
	// BlockedWallNs is the measured blocked time charged to the kind
	// (late-sender receives plus barrier skew), summed over ranks.
	BlockedWallNs int64 `json:"blocked_wall_ns"`
	BytesSent     int64 `json:"bytes_sent"`
	Msgs          int64 `json:"msgs"`
}

// stalenessRow is one rank's asynchronous-sweep staleness summary.
type stalenessRow struct {
	Rank int `json:"rank"`
	// Histogram[s] counts epochs the rank swept against ghost module
	// statistics s epochs stale.
	Histogram []int64 `json:"histogram"`
	Epochs    int64   `json:"epochs"`
	// MeanStale is the epoch-weighted average staleness; MaxStale the
	// largest bucket actually hit.
	MeanStale float64 `json:"mean_stale"`
	MaxStale  int     `json:"max_stale"`
}

// straggler is one row of the lost-time table, ranked by blocked time.
type straggler struct {
	Rank               int    `json:"rank"`
	BlockedWallNs      int64  `json:"blocked_wall_ns"`
	LateSenderWallNs   int64  `json:"late_sender_wall_ns"`
	LateReceiverWallNs int64  `json:"late_receiver_wall_ns"`
	BarrierSkewWallNs  int64  `json:"barrier_skew_wall_ns"`
	ImbalanceWallNs    int64  `json:"imbalance_wall_ns"`
	TopPhase           string `json:"top_phase,omitempty"`
}

// analysis is the machine-readable output of dinfomap-analyze.
type analysis struct {
	Source    string         `json:"source"` // dataset/graph summary line
	P         int            `json:"p"`
	Build     *obs.BuildInfo `json:"build,omitempty"`
	RunWallNs int64          `json:"run_wall_ns"`
	// PathWallNs sums the critical-path segments; PathCoverage is its
	// share of RunWallNs (near 1 on a healthy recorded run).
	PathWallNs   int64         `json:"path_wall_ns"`
	PathCoverage float64       `json:"path_coverage"`
	Path         []pathSegment `json:"critical_path,omitempty"`
	Stragglers   []straggler   `json:"stragglers,omitempty"`
	// TotalLostWallNs and LostFractionWall mirror the report's lost-time
	// rollup.
	TotalLostWallNs  int64       `json:"total_lost_wall_ns"`
	LostFractionWall float64     `json:"lost_fraction_wall"`
	Kinds            []kindModel `json:"kinds,omitempty"`
	// StalenessBound and Staleness are present on reports from
	// asynchronous (bounded-staleness) runs: the configured bound and
	// each rank's epoch-staleness histogram.
	StalenessBound int            `json:"staleness_bound,omitempty"`
	Staleness      []stalenessRow `json:"staleness,omitempty"`
	ConservationOK bool           `json:"conservation_ok"`
	// Clocks echoes the report's per-rank clock-offset estimates
	// (multi-process runs only). ClockAlignmentOK is false when any
	// rank's residual exceeds the -max-clock-skew threshold; it stays
	// true on reports without clock estimates (in-process runs share
	// one clock by construction).
	Clocks           []obs.ClockEstimate `json:"clocks,omitempty"`
	ClockAlignmentOK bool                `json:"clock_alignment_ok"`
}

// analyze distills the report into the ranked bottleneck analysis.
// maxSkew is the clock-alignment residual above which the analysis
// flags the report's cross-process timings as unreliable.
func analyze(rep *obs.Report, maxSkew time.Duration) *analysis {
	a := &analysis{
		Source:           fmt.Sprintf("%d vertices, %d edges", rep.Graph.Vertices, rep.Graph.Edges),
		P:                rep.Config.P,
		Build:            rep.Build,
		Clocks:           rep.Clocks,
		ClockAlignmentOK: true,
	}
	for _, c := range rep.Clocks {
		if c.ResidualNs > maxSkew.Nanoseconds() {
			a.ClockAlignmentOK = false
		}
	}
	if rep.WaitStates != nil {
		a.RunWallNs = rep.WaitStates.RunWallNs
	}

	for _, seg := range rep.CriticalPath {
		a.PathWallNs += seg.DurNs()
	}
	for _, seg := range rep.CriticalPath {
		ps := pathSegment{
			Rank:          seg.Rank,
			StartWallNs:   seg.StartWallNs,
			DurWallNs:     seg.DurNs(),
			Barrier:       seg.Barrier,
			DominantPhase: dominantPhase(seg.ByPhaseWallNs),
		}
		if a.PathWallNs > 0 {
			ps.PathFraction = float64(ps.DurWallNs) / float64(a.PathWallNs)
		}
		a.Path = append(a.Path, ps)
	}
	sort.SliceStable(a.Path, func(i, j int) bool { return a.Path[i].DurWallNs > a.Path[j].DurWallNs })
	if a.RunWallNs > 0 {
		a.PathCoverage = float64(a.PathWallNs) / float64(a.RunWallNs)
	}

	if rep.LostTime != nil {
		a.TotalLostWallNs = rep.LostTime.TotalLostWallNs
		a.LostFractionWall = rep.LostTime.LostFractionWall
		for _, rl := range rep.LostTime.Ranks {
			a.Stragglers = append(a.Stragglers, straggler{
				Rank:               rl.Rank,
				BlockedWallNs:      rl.LateSenderWallNs + rl.BarrierSkewWallNs,
				LateSenderWallNs:   rl.LateSenderWallNs,
				LateReceiverWallNs: rl.LateReceiverWallNs,
				BarrierSkewWallNs:  rl.BarrierSkewWallNs,
				ImbalanceWallNs:    rl.ImbalanceWallNs,
				TopPhase:           dominantPhase(rl.ByPhaseWallNs),
			})
		}
		sort.SliceStable(a.Stragglers, func(i, j int) bool {
			return a.Stragglers[i].BlockedWallNs > a.Stragglers[j].BlockedWallNs
		})
	}

	a.StalenessBound = rep.Config.StalenessBound
	for _, rr := range rep.Ranks {
		if len(rr.GhostStaleness) == 0 {
			continue
		}
		row := stalenessRow{Rank: rr.Rank, Histogram: rr.GhostStaleness}
		var weighted int64
		for s, n := range rr.GhostStaleness {
			row.Epochs += n
			weighted += int64(s) * n
			if n > 0 {
				row.MaxStale = s
			}
		}
		if row.Epochs > 0 {
			row.MeanStale = float64(weighted) / float64(row.Epochs)
		}
		a.Staleness = append(a.Staleness, row)
	}

	a.ConservationOK = true
	if rep.Comms != nil && len(rep.Comms.ByKind) > 0 {
		m := trace.DefaultCostModel()
		var sum obs.CommTotals
		names := make([]string, 0, len(rep.Comms.ByKind))
		for name := range rep.Comms.ByKind {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			kt := rep.Comms.ByKind[name]
			sum.Add(kt)
			msgs := kt.MsgsSent + kt.CollectiveMsgs
			bytes := kt.BytesSent + kt.CollectiveBytes
			a.Kinds = append(a.Kinds, kindModel{
				Kind:          name,
				ModeledNs:     (time.Duration(msgs)*m.Alpha + time.Duration(bytes)*m.BetaPerByte).Nanoseconds(),
				BlockedWallNs: kt.RecvBlockedWallNs + kt.BarrierWaitWallNs,
				BytesSent:     bytes,
				Msgs:          msgs,
			})
		}
		sort.SliceStable(a.Kinds, func(i, j int) bool {
			return a.Kinds[i].BlockedWallNs > a.Kinds[j].BlockedWallNs
		})
		a.ConservationOK = sum == rep.Comms.Totals
	}
	return a
}

// dominantPhase returns the phase with the largest attributed time,
// ties broken by name for determinism.
func dominantPhase(byPhase map[string]int64) string {
	best, bestNs := "", int64(0)
	names := make([]string, 0, len(byPhase))
	for name := range byPhase {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if ns := byPhase[name]; ns > bestNs {
			best, bestNs = name, ns
		}
	}
	return best
}

// writeText renders the analysis as the human-readable bottleneck
// report.
func (a *analysis) writeText(w *os.File, topN int) {
	fmt.Fprintf(w, "run: %s, p=%d\n", a.Source, a.P)
	if a.Build != nil {
		fmt.Fprintf(w, "build: %s\n", a.Build.String())
	}

	if len(a.Path) == 0 {
		fmt.Fprintln(w, "\nno critical path in report (run without a journal/-metrics from an older build?)")
	} else {
		fmt.Fprintf(w, "\ncritical path: %v across %d segments (%.1f%% of run wall %v; remainder is synchronization release/wake latency)\n",
			dur(a.PathWallNs), len(a.Path), 100*a.PathCoverage, dur(a.RunWallNs))
		for i, seg := range a.Path {
			if i >= topN {
				fmt.Fprintf(w, "  ... %d more segments\n", len(a.Path)-topN)
				break
			}
			phase := seg.DominantPhase
			if phase == "" {
				phase = "(runtime)"
			}
			fmt.Fprintf(w, "  rank %2d  %10v  %5.1f%%  at +%-10v  %-20s  ends at sync %d\n",
				seg.Rank, dur(seg.DurWallNs), 100*seg.PathFraction, dur(seg.StartWallNs),
				phase, seg.Barrier)
		}
	}

	if len(a.Stragglers) > 0 {
		fmt.Fprintf(w, "\nlost time: %v blocked across ranks (%.1f%% of total rank-time)\n",
			dur(a.TotalLostWallNs), 100*a.LostFractionWall)
		fmt.Fprintf(w, "  %-4s  %10s  %12s  %12s  %12s  %12s  %s\n",
			"rank", "blocked", "late-sender", "late-recv", "barrier-skew", "imbalance", "top phase")
		for i, s := range a.Stragglers {
			if i >= topN {
				fmt.Fprintf(w, "  ... %d more ranks\n", len(a.Stragglers)-topN)
				break
			}
			fmt.Fprintf(w, "  %-4d  %10v  %12v  %12v  %12v  %12v  %s\n",
				s.Rank, dur(s.BlockedWallNs), dur(s.LateSenderWallNs), dur(s.LateReceiverWallNs),
				dur(s.BarrierSkewWallNs), dur(s.ImbalanceWallNs), s.TopPhase)
		}
	}

	if len(a.Kinds) > 0 {
		fmt.Fprintln(w, "\nmeasured blocked vs alpha-beta modeled comm, per kind:")
		fmt.Fprintf(w, "  %-16s  %12s  %12s  %12s  %12s\n",
			"kind", "blocked", "modeled", "msgs", "bytes")
		for _, k := range a.Kinds {
			fmt.Fprintf(w, "  %-16s  %12v  %12v  %12d  %12d\n",
				k.Kind, dur(k.BlockedWallNs), dur(k.ModeledNs), k.Msgs, k.BytesSent)
		}
	}

	if len(a.Staleness) > 0 {
		fmt.Fprintf(w, "\nasync ghost staleness (bound k=%d), per rank:\n", a.StalenessBound)
		fmt.Fprintf(w, "  %-4s  %8s  %10s  %9s  %s\n",
			"rank", "epochs", "mean-stale", "max-stale", "histogram")
		for _, s := range a.Staleness {
			fmt.Fprintf(w, "  %-4d  %8d  %10.2f  %9d  %v\n",
				s.Rank, s.Epochs, s.MeanStale, s.MaxStale, s.Histogram)
		}
	}

	if len(a.Clocks) > 0 {
		fmt.Fprintln(w, "\nclock alignment (launcher's per-rank offset estimates):")
		fmt.Fprintf(w, "  %-4s  %12s  %12s  %12s  %s\n",
			"rank", "offset", "rtt", "residual", "samples")
		for _, c := range a.Clocks {
			fmt.Fprintf(w, "  %-4d  %12v  %12v  %12v  %d\n",
				c.Rank, dur(c.OffsetNs), dur(c.RTTNs), dur(c.ResidualNs), c.Samples)
		}
		if a.ClockAlignmentOK {
			fmt.Fprintln(w, "  alignment: ok")
		} else {
			fmt.Fprintln(w, "  alignment: UNRELIABLE (residual above threshold)")
		}
	}

	if a.ConservationOK {
		fmt.Fprintln(w, "\nconservation: ok (per-kind splits sum to totals)")
	} else {
		fmt.Fprintln(w, "\nconservation: VIOLATED (per-kind splits do not sum to totals)")
	}
}

// dur renders nanoseconds compactly.
func dur(ns int64) time.Duration {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}

// Command dinfomap-bench runs the core primitive benchmark suite
// (internal/benchsuite) through testing.Benchmark, records the median
// ns/op, allocs/op, and bytes/op of N runs per benchmark as a
// dinfomap-bench/v1 JSON report, and diffs the report against the
// committed results/bench-baseline.json with the path-classified
// thresholds of internal/regress:
//
//	dinfomap-bench [-count 5] [-bench regexp] [-out BENCH_<rev>.json]
//
// ns/op fails beyond the generous time threshold (default +25%, CPU
// noise is real); allocs/op fails on any increase (allocation counts
// are deterministic, pooling regressions must fail loudly); bytes/op
// follows the bytes threshold. Benchmarks flagged VolatileAllocs in
// the suite (asynchronous end-to-end runs, whose allocation counts
// depend on scheduling) record allocs/bytes under wall_-prefixed keys
// the differ ignores, so only their ns/op is gated. Exit status: 0
// clean, 1 regressions found, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"dinfomap/internal/benchsuite"
	"dinfomap/internal/obs"
	"dinfomap/internal/regress"
)

// ReportSchema tags the benchmark report JSON.
const ReportSchema = "dinfomap-bench/v1"

// benchRecord is the per-benchmark median of the recorded runs.
// Benchmarks with timing-dependent allocation counts (asynchronous
// end-to-end runs drain a scheduling-dependent number of packets)
// record allocs/bytes under the wall-prefixed keys instead, which the
// regression differ ignores by convention — only their ns/op stays
// gated, under the generous time threshold.
type benchRecord struct {
	Runs            int      `json:"runs"`
	N               int      `json:"n"`
	NsPerOp         float64  `json:"ns_per_op"`
	AllocsPerOp     *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp      *float64 `json:"bytes_per_op,omitempty"`
	WallAllocsPerOp *float64 `json:"wall_allocs_per_op,omitempty"`
	WallBytesPerOp  *float64 `json:"wall_bytes_per_op,omitempty"`
}

// benchReport is the dinfomap-bench/v1 document.
type benchReport struct {
	Schema     string                 `json:"schema"`
	Revision   string                 `json:"revision"`
	GoVersion  string                 `json:"go_version"`
	Count      int                    `json:"count"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
}

func main() {
	var (
		count = flag.Int("count", 5, "runs per benchmark; medians are recorded")
		match = flag.String("bench", "", "run only benchmarks matching this regexp")
		out   = flag.String("out", "", "report path (default BENCH_<rev>.json)")
		base  = flag.String("baseline", "results/bench-baseline.json",
			"baseline report to diff against; empty disables the diff")
		timeTol = flag.Float64("time-tol", regress.DefaultTimeTol,
			"relative ns/op increase tolerated before failing")
		allocsTol = flag.Float64("allocs-tol", 0,
			"relative allocs/op increase tolerated before failing")
		reportPath = flag.String("report", "", "write the JSON diff report to this file")
		verbose    = flag.Bool("v", false, "print informational findings, not just regressions")
		version    = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.ReadBuild().String())
		return
	}
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "dinfomap-bench: -count must be >= 1")
		os.Exit(2)
	}
	var filter *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap-bench: bad -bench regexp:", err)
			os.Exit(2)
		}
		filter = re
	}

	rep := benchReport{
		Schema:     ReportSchema,
		Revision:   gitRevision(),
		GoVersion:  runtime.Version(),
		Count:      *count,
		Benchmarks: map[string]benchRecord{},
	}
	for _, bench := range benchsuite.Suite() {
		if filter != nil && !filter.MatchString(bench.Name) {
			continue
		}
		ns := make([]float64, 0, *count)
		allocs := make([]float64, 0, *count)
		bytes := make([]float64, 0, *count)
		iters := make([]float64, 0, *count)
		for run := 0; run < *count; run++ {
			r := testing.Benchmark(bench.F)
			if r.N == 0 {
				fmt.Fprintf(os.Stderr, "dinfomap-bench: %s failed (0 iterations)\n", bench.Name)
				os.Exit(2)
			}
			ns = append(ns, float64(r.T.Nanoseconds())/float64(r.N))
			allocs = append(allocs, float64(r.MemAllocs)/float64(r.N))
			bytes = append(bytes, float64(r.MemBytes)/float64(r.N))
			iters = append(iters, float64(r.N))
		}
		// Allocation counts are integral per op; the per-iteration mean
		// picks up fractional residue from runtime-internal allocations
		// (GC bookkeeping, stack growth) that land inside the measured
		// window once in hundreds of iterations. Round it away so the
		// zero-allocation contract gates on real per-op allocations.
		medAllocs := math.Round(median(allocs))
		medBytes := median(bytes)
		rec := benchRecord{
			Runs:    *count,
			N:       int(median(iters)),
			NsPerOp: median(ns),
		}
		if bench.VolatileAllocs {
			rec.WallAllocsPerOp = &medAllocs
			rec.WallBytesPerOp = &medBytes
		} else {
			rec.AllocsPerOp = &medAllocs
			rec.BytesPerOp = &medBytes
		}
		rep.Benchmarks[bench.Name] = rec
		volatileMark := ""
		if bench.VolatileAllocs {
			volatileMark = "  (allocs ungated: timing-dependent)"
		}
		fmt.Printf("%-24s %12.0f ns/op %12.0f allocs/op %14.0f B/op  (median of %d)%s\n",
			bench.Name, rec.NsPerOp, medAllocs, medBytes, *count, volatileMark)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "dinfomap-bench: no benchmarks matched")
		os.Exit(2)
	}

	outPath := *out
	if outPath == "" {
		outPath = "BENCH_" + rep.Revision + ".json"
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-bench:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-bench:", err)
		os.Exit(2)
	}
	fmt.Println("wrote", outPath)

	if *base == "" {
		return
	}
	baseline, err := os.ReadFile(*base)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("no baseline at %s; skipping diff\n", *base)
			return
		}
		fmt.Fprintln(os.Stderr, "dinfomap-bench:", err)
		os.Exit(2)
	}
	opt := regress.Options{TimeTol: *timeTol, AllocsTol: *allocsTol}
	findings, compared, err := regress.DiffFiles(outPath, baseline, data, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-bench:", err)
		os.Exit(2)
	}
	if *reportPath != "" {
		diffRep := struct {
			Schema      string            `json:"schema"`
			Baseline    string            `json:"baseline"`
			Candidate   string            `json:"candidate"`
			Options     regress.Options   `json:"options"`
			Compared    int               `json:"compared"`
			Findings    []regress.Finding `json:"findings,omitempty"`
			Regressions int               `json:"regressions"`
		}{
			Schema: regress.ReportSchema, Baseline: *base, Candidate: outPath,
			Options: opt, Compared: compared, Findings: findings,
		}
		for _, f := range findings {
			if f.Regression {
				diffRep.Regressions++
			}
		}
		rdata, err := json.MarshalIndent(&diffRep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap-bench:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*reportPath, append(rdata, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap-bench:", err)
			os.Exit(2)
		}
	}
	regressions := 0
	for _, f := range findings {
		if f.Regression {
			regressions++
		}
		if f.Regression || *verbose {
			fmt.Println(f)
		}
	}
	fmt.Printf("diff vs %s: %d leaves compared, %d findings, %d regressions\n",
		*base, compared, len(findings), regressions)
	if regressions > 0 {
		fmt.Println("FAIL: benchmark regressions beyond thresholds")
		os.Exit(1)
	}
	fmt.Println("ok")
}

// gitRevision returns the short commit hash of the working tree, or
// "dev" when git is unavailable (e.g. a source tarball).
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// median returns the middle value (lower-middle for even lengths) of
// xs; xs is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[(len(xs)-1)/2]
}

// Command graphgen generates the synthetic datasets used by the
// reproduction and writes them as edge lists.
//
// Usage:
//
//	graphgen -dataset uk-2005 [-scale 0.5] [-o uk2005.txt]
//	graphgen -kind powerlaw -n 100000 -gamma 2.1 [-o pl.txt]
//	graphgen -kind planted -n 10000 -comms 50 -mixing 0.2 [-truth t.txt]
//	graphgen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dinfomap"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list built-in datasets and exit")
		dataset = flag.String("dataset", "", "built-in dataset name")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor")
		kind    = flag.String("kind", "", "generator: powerlaw | ba | planted")
		n       = flag.Int("n", 10000, "vertex count")
		gamma   = flag.Float64("gamma", 2.2, "power-law exponent")
		dmin    = flag.Int("dmin", 2, "minimum expected degree (powerlaw)")
		dmax    = flag.Int("dmax", 0, "maximum expected degree (powerlaw; 0 = n/10)")
		baM     = flag.Int("m", 5, "edges per new vertex (ba)")
		comms   = flag.Int("comms", 50, "planted community count")
		avgDeg  = flag.Float64("avgdeg", 10, "planted average degree")
		mixing  = flag.Float64("mixing", 0.2, "planted mixing parameter mu")
		seed    = flag.Uint64("seed", 1, "random seed")
		outPath = flag.String("o", "", "output file (default stdout)")
		truth   = flag.String("truth", "", "write planted ground truth here")
	)
	flag.Parse()

	if *list {
		for _, name := range dinfomap.Datasets() {
			d, _ := dinfomap.LookupDataset(name)
			fmt.Printf("%-14s %-7s %s\n", name, d.Class, d.Description)
		}
		return
	}

	var g *dinfomap.Graph
	var groundTruth []int
	switch {
	case *dataset != "":
		d, err := dinfomap.LookupDataset(*dataset)
		if err != nil {
			fatal(err)
		}
		//dinfomap:float-ok flag sentinel: 1.0 is the literal "no scaling" default
		if *scale != 1.0 {
			d.N = int(float64(d.N) * *scale)
			d.RMATEdges = int(float64(d.RMATEdges) * *scale)
			if d.NumComms > 1 {
				d.NumComms = max(2, int(float64(d.NumComms)**scale))
			}
		}
		d.Seed = *seed
		g, groundTruth = d.Generate()
	case *kind == "powerlaw":
		mx := *dmax
		if mx <= 0 {
			mx = *n / 10
		}
		g = dinfomap.GeneratePowerLaw(*seed, *n, *gamma, *dmin, mx)
	case *kind == "ba":
		g = dinfomap.GenerateBarabasiAlbert(*seed, *n, *baM)
	case *kind == "planted":
		pg := dinfomap.GeneratePlanted(dinfomap.PlantedConfig{
			N: *n, NumComms: *comms, AvgDegree: *avgDeg, Mixing: *mixing,
			DegreeGamma: *gamma,
		}, *seed)
		g, groundTruth = pg.Graph, pg.Truth
	default:
		fatal(fmt.Errorf("need -dataset, -kind, or -list"))
	}

	var w io.Writer = os.Stdout
	var out *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		out = f
		w = f
	}
	if err := dinfomap.WriteEdgeList(w, g); err != nil {
		fatal(err)
	}
	if out != nil {
		if err := out.Close(); err != nil {
			fatal(err)
		}
	}
	st := dinfomap.ComputeDegreeStats(g)
	fmt.Fprintf(os.Stderr, "generated %d vertices, %d edges, %s\n",
		g.NumVertices(), g.NumEdges(), st)

	if *truth != "" && groundTruth != nil {
		f, err := os.Create(*truth)
		if err != nil {
			fatal(err)
		}
		for u, c := range groundTruth {
			fmt.Fprintf(f, "%d %d\n", u, c)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

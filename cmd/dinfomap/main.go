// Command dinfomap runs the distributed Infomap algorithm on a graph.
//
// Usage:
//
//	dinfomap -p 8 [-dhigh N] [-seed S] [-out comms.txt] graph.txt
//	dinfomap -p 8 -dataset uk-2005 [-scale 0.5]
//	dinfomap -p 8 -dataset amazon -trace run.trace.json -metrics run.json
//
// The input is a whitespace-separated edge list ("u v" or "u v w" per
// line, '#' comments), or one of the built-in synthetic stand-in
// datasets. The tool prints the codelength, module count, per-stage
// modeled times, and the Figure 8 phase breakdown; with -out it also
// writes "vertex community" lines.
//
// Observability: -trace writes a Chrome trace-event JSON timeline (one
// row per rank; open in Perfetto or chrome://tracing), -metrics writes
// the structured JSON run report, and -cpuprofile / -memprofile /
// -pprof wire in the standard Go profilers. The -pprof listener also
// serves the live run endpoints: /debug/dinfomap/events streams journal
// events as they happen (Server-Sent Events), /debug/dinfomap/status
// returns a JSON snapshot of per-rank progress, and
// /debug/dinfomap/metrics exposes per-rank span and per-kind traffic
// counters in Prometheus text format. CPU profiles are labeled per
// simulated rank; isolate one with go tool pprof -tagfocus rank=3.
//
// With -transport=proc the same surface is mesh-wide: each rank process
// streams its telemetry to the launcher over a side channel, the
// launcher aligns all timestamps using per-rank clock-offset estimates,
// and -pprof/-trace/-metrics then serve or write one unified view — a
// single merged trace with one row per rank process and cross-process
// message flow arrows, and a run report carrying the same wait-state
// and critical-path sections as in-process runs (plus per-rank
// transport counters and the clock estimates themselves).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dinfomap"
	"dinfomap/internal/trace"
)

func main() {
	var (
		p              = flag.Int("p", 4, "number of ranks")
		dHigh          = flag.Int("dhigh", 0, "delegate degree threshold (0 = auto)")
		seed           = flag.Uint64("seed", 1, "random seed")
		asyncStaleness = flag.Int("async-staleness", 0,
			"bounded-staleness async sweeps: ranks may proceed with ghost statistics up to k epochs stale (0 = synchronous, bit-reproducible)")
		dataset   = flag.String("dataset", "", "built-in dataset name instead of a file")
		scale     = flag.Float64("scale", 1.0, "built-in dataset scale factor")
		transport = flag.String("transport", "goroutine",
			"rank backend: goroutine (in-process) or proc (one OS process per rank over TCP)")
		connectTimeout = flag.Duration("connect-timeout", 30*time.Second,
			"proc transport: budget for establishing the rank mesh")
		outPath = flag.String("out", "", "write 'vertex community' lines to this file")
		dotPath = flag.String("dot", "", "write the community quotient graph as GraphViz DOT")
		top     = flag.Int("top", 0, "print a report of the top N communities")
		quiet   = flag.Bool("q", false, "suppress the breakdown report")

		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file (-transport=proc writes one merged clock-aligned timeline plus per-rank fragments suffixed .rank<r>)")
		metricsPath = flag.String("metrics", "", "write the structured JSON run report to this file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and the live /debug/dinfomap/ endpoints on this address (e.g. localhost:6060)")
		version     = flag.Bool("version", false, "print build provenance and exit")

		// Internal child-mode flags set by the -transport=proc launcher
		// when it re-executes this binary as one rank; never set by hand.
		mpiChild    = flag.Bool("mpi-child", false, "internal: run as one rank of a -transport=proc launch")
		mpiRank     = flag.Int("mpi-rank", 0, "internal: this child's rank id")
		mpiAddrs    = flag.String("mpi-addrs", "", "internal: comma-separated rank address table")
		mpiNet      = flag.String("mpi-net", "tcp", "internal: mesh network (tcp or unix)")
		mpiEpoch    = flag.Int64("mpi-epoch", 0, "internal: shared wall-clock epoch, unix nanoseconds")
		mpiArtifact = flag.String("mpi-artifact", "", "internal: rank artifact output path")
		mpiUplink   = flag.String("mpi-uplink", "", "internal: parent telemetry uplink address")
	)
	flag.Parse()
	if *version {
		fmt.Println(dinfomap.ReadBuildProvenance().String())
		return
	}

	launch := procLaunch{
		p: *p, dHigh: *dHigh, seed: *seed, asyncStaleness: *asyncStaleness,
		dataset: *dataset, scale: *scale, graphPath: flag.Arg(0),
		tracePath: *tracePath, connectTimeout: *connectTimeout,
	}
	if *mpiChild {
		if err := runChildRank(childConfig{
			rank:         *mpiRank,
			addrs:        strings.Split(*mpiAddrs, ","),
			network:      *mpiNet,
			epochNano:    *mpiEpoch,
			artifactPath: *mpiArtifact,
			uplink:       *mpiUplink,
			launch:       launch,
		}); err != nil {
			fatal(err)
		}
		return
	}
	multiproc := false
	switch *transport {
	case "goroutine":
	case "proc":
		multiproc = true
	default:
		fatal(fmt.Errorf("unknown -transport %q (want goroutine or proc)", *transport))
	}

	// The journal feeds -trace, the live -pprof debug endpoints, and the
	// wait-state sections of the -metrics report (the critical path needs
	// span timings, so a report without a journal would ship without it).
	// With -transport=proc the events happen in the child processes; the
	// parent's journal receives them over the telemetry uplink, aligned
	// to one epoch, so the same endpoints and outputs cover the mesh.
	epoch := time.Now()
	launch.epoch = epoch
	var journal *dinfomap.RunJournal
	var liveMetrics *dinfomap.RunLiveMetrics
	if *tracePath != "" || *pprofAddr != "" || *metricsPath != "" {
		journal = dinfomap.NewRunJournalAt(*p, epoch)
	}
	if *pprofAddr != "" {
		liveMetrics = dinfomap.RegisterRunDebugHandlers(http.DefaultServeMux, journal)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dinfomap: pprof listener:", err)
			}
		}()
		fmt.Printf("pprof:  http://%s/debug/pprof/\n", *pprofAddr)
		fmt.Printf("live:   http://%s/debug/dinfomap/events (SSE), .../status (JSON), .../metrics (Prometheus)\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dinfomap:", err)
			}
		}()
	}

	g, err := loadGraph(*dataset, *scale, flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	cfg := dinfomap.DistributedConfig{
		P: *p, DHigh: *dHigh, Seed: *seed,
		StalenessBound: *asyncStaleness, Journal: journal,
	}
	start := time.Now()
	var res *dinfomap.DistributedResult
	var mesh *meshTelemetry
	if multiproc {
		fmt.Printf("transport: proc (%d rank processes over TCP loopback)\n", *p)
		res, mesh, err = launchProcRanks(launch, journal, liveMetrics)
		if err != nil {
			fatal(err)
		}
		if mesh != nil {
			// Report building reads span timings from the journal; hand it
			// the merged clock-aligned one so the proc-mode report carries
			// the same wait-state and critical-path sections as in-process
			// runs (res already carries the recorder and clock estimates).
			cfg.Journal = mesh.journal
		}
	} else {
		res = dinfomap.RunDistributed(g, cfg)
	}
	wall := time.Since(start)

	fmt.Printf("modules:     %d\n", res.NumModules)
	fmt.Printf("codelength:  %.6f bits (initial %.6f)\n", res.Codelength, res.InitialCodelength)
	fmt.Printf("outer iters: %d (stage-1 sweeps %d, stage-2 sweeps %d)\n",
		res.OuterIterations, res.Stage1Iterations, res.Stage2Iterations)
	fmt.Printf("hubs:        %d delegated (max rank load %d arcs)\n",
		res.Partition.NumHubs, res.Partition.MaxEdges)
	fmt.Printf("modeled:     stage1 %v + stage2 %v = %v (host wall %v)\n",
		res.Stage1Modeled.Round(time.Microsecond), res.Stage2Modeled.Round(time.Microsecond),
		res.TotalModeled().Round(time.Microsecond), wall.Round(time.Millisecond))
	fmt.Printf("max rank traffic: %d bytes\n", res.MaxRankBytes)
	if !*quiet {
		fmt.Println("stage-1 phase breakdown (modeled, max rank):")
		for _, ph := range []string{
			trace.PhaseFindBestModule, trace.PhaseBcastDelegates,
			trace.PhaseSwapBoundary, trace.PhaseRefreshRound1,
			trace.PhaseRefreshRound2, trace.PhaseOther,
		} {
			fmt.Printf("  %-20s %v\n", ph, res.PhaseModeled[ph].Round(time.Microsecond))
		}
	}

	if *top > 0 {
		fmt.Printf("\ntop %d communities:\n", *top)
		if err := dinfomap.SummarizeCommunities(g, res.Communities).WriteText(os.Stdout, *top); err != nil {
			fatal(err)
		}
	}
	if *tracePath != "" {
		if err := writeFile(*tracePath, func(w io.Writer) error {
			return dinfomap.WriteChromeTraceWith(w, cfg.Journal, res.WaitRecorder)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d events; open in https://ui.perfetto.dev)\n",
			*tracePath, cfg.Journal.NumEvents())
		if multiproc {
			fmt.Printf("wrote %s.rank0 .. .rank%d (raw per-process fragments)\n",
				*tracePath, *p-1)
		}
	}
	if *metricsPath != "" {
		rep := dinfomap.BuildRunReport(g, cfg, res)
		if err := writeFile(*metricsPath, rep.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsPath)
	}
	if *dotPath != "" {
		if err := writeFile(*dotPath, func(w io.Writer) error {
			return dinfomap.WriteCommunityDOT(w, g, res.Communities, 0)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
	if *outPath != "" {
		if err := writeCommunities(*outPath, res.Communities); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *memProfile != "" {
		runtime.GC()
		if err := writeFile(*memProfile, func(w io.Writer) error {
			return pprof.WriteHeapProfile(w)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *memProfile)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dinfomap:", err)
	os.Exit(1)
}

func loadGraph(dataset string, scale float64, path string) (*dinfomap.Graph, error) {
	if dataset != "" {
		d, err := dinfomap.LookupDataset(dataset)
		if err != nil {
			return nil, err
		}
		//dinfomap:float-ok flag sentinel: 1.0 is the literal "no scaling" default
		if scale != 1.0 {
			d.N = int(float64(d.N) * scale)
			d.RMATEdges = int(float64(d.RMATEdges) * scale)
			if d.NumComms > 1 {
				d.NumComms = int(float64(d.NumComms) * scale)
				if d.NumComms < 2 {
					d.NumComms = 2
				}
			}
		}
		g, _ := d.Generate()
		return g, nil
	}
	if path == "" {
		return nil, fmt.Errorf("need an edge-list file or -dataset (known: %v)", dinfomap.Datasets())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//dinfomap:close-ok read-only file; close errors cannot lose data
	defer f.Close()
	return dinfomap.ReadEdgeList(f)
}

// writeFile creates path, streams fn's output through a buffered
// writer, and reports flush/close errors exactly once (the file is
// closed on every path, but never double-closed).
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	err = fn(w)
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return errors.Join(fmt.Errorf("writing %s", path), err)
	}
	return nil
}

func writeCommunities(path string, comms []int) error {
	return writeFile(path, func(w io.Writer) error {
		for u, c := range comms {
			if _, err := fmt.Fprintf(w, "%d %d\n", u, c); err != nil {
				return err
			}
		}
		return nil
	})
}

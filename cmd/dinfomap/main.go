// Command dinfomap runs the distributed Infomap algorithm on a graph.
//
// Usage:
//
//	dinfomap -p 8 [-dhigh N] [-seed S] [-out comms.txt] graph.txt
//	dinfomap -p 8 -dataset uk-2005 [-scale 0.5]
//
// The input is a whitespace-separated edge list ("u v" or "u v w" per
// line, '#' comments), or one of the built-in synthetic stand-in
// datasets. The tool prints the codelength, module count, per-stage
// modeled times, and the Figure 8 phase breakdown; with -out it also
// writes "vertex community" lines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"dinfomap"
	"dinfomap/internal/trace"
)

func main() {
	var (
		p       = flag.Int("p", 4, "number of simulated ranks")
		dHigh   = flag.Int("dhigh", 0, "delegate degree threshold (0 = auto)")
		seed    = flag.Uint64("seed", 1, "random seed")
		dataset = flag.String("dataset", "", "built-in dataset name instead of a file")
		scale   = flag.Float64("scale", 1.0, "built-in dataset scale factor")
		outPath = flag.String("out", "", "write 'vertex community' lines to this file")
		dotPath = flag.String("dot", "", "write the community quotient graph as GraphViz DOT")
		top     = flag.Int("top", 0, "print a report of the top N communities")
		quiet   = flag.Bool("q", false, "suppress the breakdown report")
	)
	flag.Parse()

	g, err := loadGraph(*dataset, *scale, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	res := dinfomap.RunDistributed(g, dinfomap.DistributedConfig{
		P: *p, DHigh: *dHigh, Seed: *seed,
	})
	wall := time.Since(start)

	fmt.Printf("modules:     %d\n", res.NumModules)
	fmt.Printf("codelength:  %.6f bits (initial %.6f)\n", res.Codelength, res.InitialCodelength)
	fmt.Printf("outer iters: %d (stage-1 sweeps %d, stage-2 sweeps %d)\n",
		res.OuterIterations, res.Stage1Iterations, res.Stage2Iterations)
	fmt.Printf("hubs:        %d delegated (max rank load %d arcs)\n",
		res.Partition.NumHubs, res.Partition.MaxEdges)
	fmt.Printf("modeled:     stage1 %v + stage2 %v = %v (host wall %v)\n",
		res.Stage1Modeled.Round(time.Microsecond), res.Stage2Modeled.Round(time.Microsecond),
		res.TotalModeled().Round(time.Microsecond), wall.Round(time.Millisecond))
	fmt.Printf("max rank traffic: %d bytes\n", res.MaxRankBytes)
	if !*quiet {
		fmt.Println("stage-1 phase breakdown (modeled, max rank):")
		for _, ph := range []string{
			trace.PhaseFindBestModule, trace.PhaseBcastDelegates,
			trace.PhaseSwapBoundary, trace.PhaseOther,
		} {
			fmt.Printf("  %-20s %v\n", ph, res.PhaseModeled[ph].Round(time.Microsecond))
		}
	}

	if *top > 0 {
		fmt.Printf("\ntop %d communities:\n", *top)
		if err := dinfomap.SummarizeCommunities(g, res.Communities).WriteText(os.Stdout, *top); err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap:", err)
			os.Exit(1)
		}
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap:", err)
			os.Exit(1)
		}
		if err := dinfomap.WriteCommunityDOT(f, g, res.Communities, 0); err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *dotPath)
	}
	if *outPath != "" {
		if err := writeCommunities(*outPath, res.Communities); err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func loadGraph(dataset string, scale float64, path string) (*dinfomap.Graph, error) {
	if dataset != "" {
		d, err := dinfomap.LookupDataset(dataset)
		if err != nil {
			return nil, err
		}
		if scale != 1.0 {
			d.N = int(float64(d.N) * scale)
			d.RMATEdges = int(float64(d.RMATEdges) * scale)
			if d.NumComms > 1 {
				d.NumComms = int(float64(d.NumComms) * scale)
				if d.NumComms < 2 {
					d.NumComms = 2
				}
			}
		}
		g, _ := d.Generate()
		return g, nil
	}
	if path == "" {
		return nil, fmt.Errorf("need an edge-list file or -dataset (known: %v)", dinfomap.Datasets())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dinfomap.ReadEdgeList(f)
}

func writeCommunities(path string, comms []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for u, c := range comms {
		fmt.Fprintf(w, "%d %d\n", u, c)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

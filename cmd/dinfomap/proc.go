// Multi-process launcher: -transport=proc runs each rank as its own OS
// process over TCP loopback. The parent binds one listener per rank,
// re-executes itself once per rank in child mode (hidden -mpi-* flags,
// the rank's listener passed as fd 3), and assembles the children's
// artifact files into the same DistributedResult the in-process run
// produces — bit-identical for the same graph, config, and seed,
// because every child regenerates the graph and partitioning
// deterministically and runs the identical rank program.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dinfomap"
)

// procLaunch carries the parent's flag values that the children must
// reproduce exactly: anything that shapes the graph or the algorithm.
type procLaunch struct {
	p, dHigh       int
	seed           uint64
	dataset        string
	scale          float64
	graphPath      string
	tracePath      string
	connectTimeout time.Duration
}

// childConfig is the child-mode half: mesh coordinates from the hidden
// -mpi-* flags plus the replicated algorithm flags.
type childConfig struct {
	rank         int
	addrs        []string
	network      string
	epochNano    int64
	artifactPath string
	launch       procLaunch
}

// launchProcRanks runs the algorithm with one OS process per rank and
// returns the assembled result.
func launchProcRanks(l procLaunch) (*dinfomap.DistributedResult, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary: %w", err)
	}
	listeners, addrs, err := dinfomap.ListenRanks("tcp", l.p, "")
	if err != nil {
		return nil, err
	}
	defer closeListeners(listeners)

	artDir, err := os.MkdirTemp("", "dinfomap-proc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(artDir)

	// One wall-clock epoch shared by the mesh: sentAt stamps and trace
	// times from different processes stay comparable.
	epoch := time.Now()
	cmds := make([]*exec.Cmd, l.p)
	artPaths := make([]string, l.p)
	for r := 0; r < l.p; r++ {
		artPaths[r] = filepath.Join(artDir, fmt.Sprintf("rank%d.json", r))
		args := []string{
			"-mpi-child",
			"-mpi-rank", strconv.Itoa(r),
			"-mpi-addrs", strings.Join(addrs, ","),
			"-mpi-net", "tcp",
			"-mpi-epoch", strconv.FormatInt(epoch.UnixNano(), 10),
			"-mpi-artifact", artPaths[r],
			"-p", strconv.Itoa(l.p),
			"-dhigh", strconv.Itoa(l.dHigh),
			"-seed", strconv.FormatUint(l.seed, 10),
			"-connect-timeout", l.connectTimeout.String(),
		}
		if l.dataset != "" {
			args = append(args, "-dataset", l.dataset,
				"-scale", strconv.FormatFloat(l.scale, 'g', -1, 64))
		}
		if l.tracePath != "" {
			args = append(args, "-trace", l.tracePath)
		}
		if l.graphPath != "" {
			args = append(args, l.graphPath)
		}

		f, err := listenerFile(listeners[r])
		if err != nil {
			killStarted(cmds)
			return nil, err
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr // children print diagnostics only
		cmd.Stderr = os.Stderr
		cmd.ExtraFiles = []*os.File{f} // becomes fd 3 in the child
		err = cmd.Start()
		//dinfomap:close-ok parent's dup of the listener fd; the child holds its own
		f.Close()
		if err != nil {
			killStarted(cmds)
			return nil, fmt.Errorf("spawning rank %d: %w", r, err)
		}
		cmds[r] = cmd
	}
	// The children hold dup'd listener fds; the parent's copies can go
	// before the mesh even connects.
	closeListeners(listeners)

	var errs []error
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("rank %d process: %w", r, err))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	arts := make([]*dinfomap.RankArtifact, l.p)
	for r, path := range artPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("rank %d artifact: %w", r, err)
		}
		a := &dinfomap.RankArtifact{}
		if err := json.Unmarshal(data, a); err != nil {
			return nil, fmt.Errorf("rank %d artifact: %w", r, err)
		}
		arts[r] = a
	}
	cfg := dinfomap.DistributedConfig{P: l.p, DHigh: l.dHigh, Seed: l.seed}
	return dinfomap.AssembleDistributed(cfg, arts)
}

// runChildRank is the child-mode entry point: dial the mesh, run this
// rank, write the artifact file (and, when tracing, this rank's
// timeline). Any error — including a poisoned world — exits non-zero
// through the caller, which is how rank failure reaches the parent.
func runChildRank(cc childConfig) error {
	lf := os.NewFile(3, "mpi-listener")
	if lf == nil {
		return fmt.Errorf("rank %d: missing inherited listener (fd 3)", cc.rank)
	}
	ln, err := net.FileListener(lf)
	//dinfomap:close-ok FileListener dups the fd; the original can go either way
	lf.Close()
	if err != nil {
		return fmt.Errorf("rank %d: inherited listener: %w", cc.rank, err)
	}

	l := cc.launch
	g, err := loadGraph(l.dataset, l.scale, l.graphPath)
	if err != nil {
		return fmt.Errorf("rank %d: %w", cc.rank, err)
	}

	var journal *dinfomap.RunJournal
	if l.tracePath != "" {
		journal = dinfomap.NewRunJournal(l.p)
	}

	tr, err := dinfomap.DialProcTransport(dinfomap.ProcTransportConfig{
		Rank: cc.rank, Size: l.p,
		Listener: ln, Addrs: cc.addrs, Network: cc.network,
		Epoch:   time.Unix(0, cc.epochNano),
		Version: dinfomap.ReadBuildProvenance().String(),
	}, dinfomap.WithConnectTimeout(l.connectTimeout))
	if err != nil {
		return fmt.Errorf("rank %d: %w", cc.rank, err)
	}

	cfg := dinfomap.DistributedConfig{P: l.p, DHigh: l.dHigh, Seed: l.seed, Journal: journal}
	art, err := dinfomap.RunDistributedRank(g, cfg, tr)
	journal.Finish()
	if err != nil {
		return fmt.Errorf("rank %d: %w", cc.rank, err)
	}

	if err := writeFile(cc.artifactPath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(art)
	}); err != nil {
		return fmt.Errorf("rank %d: %w", cc.rank, err)
	}
	if journal != nil {
		path := fmt.Sprintf("%s.rank%d", l.tracePath, cc.rank)
		if err := writeFile(path, func(w io.Writer) error {
			return dinfomap.WriteChromeTrace(w, journal)
		}); err != nil {
			return fmt.Errorf("rank %d: %w", cc.rank, err)
		}
	}
	return nil
}

// listenerFile dups the listener's fd for inheritance by a child.
func listenerFile(ln net.Listener) (*os.File, error) {
	tl, ok := ln.(*net.TCPListener)
	if !ok {
		return nil, fmt.Errorf("listener %T cannot be passed to a child process", ln)
	}
	return tl.File()
}

func closeListeners(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			//dinfomap:close-ok idempotent shutdown of loopback listeners; double close is harmless
			ln.Close()
		}
	}
}

// killStarted tears down already-started children after a spawn error.
func killStarted(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		cmd.Process.Kill()
		cmd.Wait()
	}
}

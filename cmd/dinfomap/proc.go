// Multi-process launcher: -transport=proc runs each rank as its own OS
// process over TCP loopback. The parent binds one listener per rank,
// re-executes itself once per rank in child mode (hidden -mpi-* flags,
// the rank's listener passed as fd 3), and assembles the children's
// artifact files into the same DistributedResult the in-process run
// produces — bit-identical for the same graph, config, and seed,
// because every child regenerates the graph and partitioning
// deterministically and runs the identical rank program.
//
// When the run is observed (-trace, -pprof, or -metrics), the parent
// additionally binds a telemetry uplink listener and each child streams
// its journal events, periodic comm-stats snapshots, and a final
// lossless telemetry section back over a dedicated side channel. The
// parent estimates each child's clock offset from ping/pong samples,
// feeds the live flow into its own journal (so the -pprof debug surface
// is mesh-wide), and merges the final sections into one aligned journal
// and wait recorder — the inputs of the merged Chrome trace and the
// report's wait-state and critical-path sections.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"dinfomap"
)

// procLaunch carries the parent's flag values that the children must
// reproduce exactly: anything that shapes the graph or the algorithm.
type procLaunch struct {
	p, dHigh       int
	asyncStaleness int
	seed           uint64
	dataset        string
	scale          float64
	graphPath      string
	tracePath      string
	connectTimeout time.Duration
	// epoch is the shared wall-clock zero point of the whole run: the
	// mesh's stamps, every child journal, and the parent journal all
	// anchor to it, so cross-process offsets are small residuals.
	epoch time.Time
}

// childConfig is the child-mode half: mesh coordinates from the hidden
// -mpi-* flags plus the replicated algorithm flags.
type childConfig struct {
	rank         int
	addrs        []string
	network      string
	epochNano    int64
	artifactPath string
	uplink       string // parent's telemetry listener address; "" = no telemetry
	launch       procLaunch
}

// meshTelemetry is what the telemetry uplink recovers from a finished
// multi-process run: the merged clock-aligned journal and wait
// recorder, plus the per-rank clock estimates behind the alignment.
type meshTelemetry struct {
	journal  *dinfomap.RunJournal
	recorder *dinfomap.WaitRecorder
	clocks   []dinfomap.ClockEstimate
}

// launchProcRanks runs the algorithm with one OS process per rank and
// returns the assembled result. journal, when non-nil, is the parent's
// live journal: a telemetry uplink is offered to every child, live
// events land in the journal as they stream in (clock-aligned with the
// running estimate), lm receives transport counters, and the returned
// meshTelemetry carries the merged post-run view. With a nil journal
// the children run unobserved, exactly as before.
func launchProcRanks(l procLaunch, journal *dinfomap.RunJournal, lm *dinfomap.RunLiveMetrics) (*dinfomap.DistributedResult, *meshTelemetry, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("locating own binary: %w", err)
	}
	listeners, addrs, err := dinfomap.ListenRanks("tcp", l.p, "")
	if err != nil {
		return nil, nil, err
	}
	defer closeListeners(listeners)

	artDir, err := os.MkdirTemp("", "dinfomap-proc")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(artDir)

	// One wall-clock epoch shared by the mesh: sentAt stamps and trace
	// times from different processes stay comparable.
	epoch := l.epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}

	// Telemetry uplink: bind the side-channel listener and collect every
	// child's stream. The journal finishes when this function returns,
	// whatever the outcome, so SSE subscribers always get a terminal
	// status frame even when a rank dies.
	var coll *dinfomap.MeshCollector
	var upAddr string
	var upLn net.Listener
	var upWG sync.WaitGroup
	if journal != nil {
		defer journal.Finish()
		upLn, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("telemetry uplink listener: %w", err)
		}
		upAddr = upLn.Addr().String()
		coll = dinfomap.NewMeshCollector(l.p, journal, lm)
		version := dinfomap.ReadBuildProvenance().String()
		connectTimeout := l.connectTimeout
		upWG.Add(1)
		go func() {
			defer upWG.Done()
			var conns sync.WaitGroup
			defer conns.Wait()
			for {
				conn, err := upLn.Accept()
				if err != nil {
					return // listener closed: launch is over
				}
				conns.Add(1)
				go func(conn net.Conn) {
					defer conns.Done()
					peer, err := dinfomap.AcceptTelemetryUplink(conn, l.p, epoch, version, connectTimeout)
					if err != nil {
						fmt.Fprintln(os.Stderr, "dinfomap: telemetry uplink:", err)
						//dinfomap:close-ok rejected handshake; telemetry is best-effort
						conn.Close()
						return
					}
					// A read error here means the child died mid-stream;
					// its exit status reports the failure, telemetry
					// just ends early.
					if err := peer.Serve(coll, 0); err != nil {
						fmt.Fprintf(os.Stderr, "dinfomap: telemetry uplink rank %d: %v\n", peer.Rank(), err)
					}
					peer.Close()
				}(conn)
			}
		}()
	}
	// The uplink listener closes (and its goroutines drain) before any
	// return below; LIFO ordering runs this ahead of journal.Finish.
	defer func() {
		if upLn != nil {
			//dinfomap:close-ok run is over; children already said bye or died
			upLn.Close()
			upWG.Wait()
			upLn = nil
		}
	}()

	cmds := make([]*exec.Cmd, l.p)
	artPaths := make([]string, l.p)
	for r := 0; r < l.p; r++ {
		artPaths[r] = filepath.Join(artDir, fmt.Sprintf("rank%d.json", r))
		args := []string{
			"-mpi-child",
			"-mpi-rank", strconv.Itoa(r),
			"-mpi-addrs", strings.Join(addrs, ","),
			"-mpi-net", "tcp",
			"-mpi-epoch", strconv.FormatInt(epoch.UnixNano(), 10),
			"-mpi-artifact", artPaths[r],
			"-p", strconv.Itoa(l.p),
			"-dhigh", strconv.Itoa(l.dHigh),
			"-seed", strconv.FormatUint(l.seed, 10),
			"-async-staleness", strconv.Itoa(l.asyncStaleness),
			"-connect-timeout", l.connectTimeout.String(),
		}
		if upAddr != "" {
			args = append(args, "-mpi-uplink", upAddr)
		}
		if l.dataset != "" {
			args = append(args, "-dataset", l.dataset,
				"-scale", strconv.FormatFloat(l.scale, 'g', -1, 64))
		}
		if l.tracePath != "" {
			args = append(args, "-trace", l.tracePath)
		}
		if l.graphPath != "" {
			args = append(args, l.graphPath)
		}

		f, err := listenerFile(listeners[r])
		if err != nil {
			killStarted(cmds)
			return nil, nil, err
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr // children print diagnostics only
		cmd.Stderr = os.Stderr
		cmd.ExtraFiles = []*os.File{f} // becomes fd 3 in the child
		err = cmd.Start()
		//dinfomap:close-ok parent's dup of the listener fd; the child holds its own
		f.Close()
		if err != nil {
			killStarted(cmds)
			return nil, nil, fmt.Errorf("spawning rank %d: %w", r, err)
		}
		cmds[r] = cmd
	}
	// The children hold dup'd listener fds; the parent's copies can go
	// before the mesh even connects.
	closeListeners(listeners)

	var errs []error
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("rank %d process: %w", r, err))
		}
	}
	// Children are gone; their uplink streams have ended. Drain the
	// collector before merging (or before reporting failure, so the
	// parent journal still finishes with whatever telemetry arrived).
	if upLn != nil {
		//dinfomap:close-ok run is over; children already said bye or died
		upLn.Close()
		upWG.Wait()
		upLn = nil
	}
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}

	arts := make([]*dinfomap.RankArtifact, l.p)
	for r, path := range artPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("rank %d artifact: %w", r, err)
		}
		a := &dinfomap.RankArtifact{}
		if err := json.Unmarshal(data, a); err != nil {
			return nil, nil, fmt.Errorf("rank %d artifact: %w", r, err)
		}
		arts[r] = a
	}
	cfg := dinfomap.DistributedConfig{
		P: l.p, DHigh: l.dHigh, Seed: l.seed, StalenessBound: l.asyncStaleness,
	}
	res, err := dinfomap.AssembleDistributed(cfg, arts)
	if err != nil {
		return nil, nil, err
	}

	var mesh *meshTelemetry
	if coll != nil {
		merged, rec := coll.Merge(epoch)
		mesh = &meshTelemetry{journal: merged, recorder: rec, clocks: coll.Clocks()}
		res.WaitRecorder = rec
		res.Clocks = mesh.clocks
	}
	return res, mesh, nil
}

// runChildRank is the child-mode entry point: dial the mesh (and the
// telemetry uplink when the parent offers one), run this rank, write
// the artifact file (and, when tracing, this rank's timeline). Any
// error — including a poisoned world — exits non-zero through the
// caller, which is how rank failure reaches the parent. The telemetry
// flush runs on failure paths too: the journal finishes (terminal
// status frame for any subscriber) and the final section ships with
// whatever the rank recorded before dying.
func runChildRank(cc childConfig) error {
	lf := os.NewFile(3, "mpi-listener")
	if lf == nil {
		return fmt.Errorf("rank %d: missing inherited listener (fd 3)", cc.rank)
	}
	ln, err := net.FileListener(lf)
	//dinfomap:close-ok FileListener dups the fd; the original can go either way
	lf.Close()
	if err != nil {
		return fmt.Errorf("rank %d: inherited listener: %w", cc.rank, err)
	}

	l := cc.launch
	epoch := time.Unix(0, cc.epochNano)
	g, err := loadGraph(l.dataset, l.scale, l.graphPath)
	if err != nil {
		return fmt.Errorf("rank %d: %w", cc.rank, err)
	}

	// Rank-scoped journal: sized for the world (instrumentation indexes
	// by global rank) but allocating only this rank's row, anchored to
	// the launcher's epoch so stamps from every process are comparable.
	var journal *dinfomap.RunJournal
	var rec *dinfomap.WaitRecorder
	if l.tracePath != "" || cc.uplink != "" {
		journal = dinfomap.NewRankJournal(cc.rank, l.p, epoch)
		rec = dinfomap.NewWaitRecorder(l.p, epoch)
	}

	version := dinfomap.ReadBuildProvenance().String()
	tr, err := dinfomap.DialProcTransport(dinfomap.ProcTransportConfig{
		Rank: cc.rank, Size: l.p,
		Listener: ln, Addrs: cc.addrs, Network: cc.network,
		Epoch:   epoch,
		Version: version,
	}, dinfomap.WithConnectTimeout(l.connectTimeout))
	if err != nil {
		return fmt.Errorf("rank %d: %w", cc.rank, err)
	}

	// The uplink is an observer: failing to reach it degrades telemetry,
	// never the run.
	var up *dinfomap.TelemetryUplink
	var relay *dinfomap.TelemetryRelay
	if cc.uplink != "" {
		up, err = dinfomap.DialTelemetryUplink("tcp", cc.uplink, dinfomap.TelemetryUplinkConfig{
			Rank: cc.rank, Size: l.p, Epoch: epoch,
			Version: version, DialTimeout: l.connectTimeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dinfomap: rank %d: telemetry uplink: %v (continuing without)\n", cc.rank, err)
			up = nil
		} else {
			relay = dinfomap.StartTelemetryRelay(journal, cc.rank, up, tr.Telemetry, 0)
		}
	}

	cfg := dinfomap.DistributedConfig{
		P: l.p, DHigh: l.dHigh, Seed: l.seed,
		StalenessBound: l.asyncStaleness,
		Journal:        journal, Recorder: rec,
	}
	art, runErr := dinfomap.RunDistributedRank(g, cfg, tr)

	// Telemetry teardown, on success and failure alike. Finish ends the
	// live stream (the relay drains and sends its last snapshot), then
	// the lossless section ships blocking and the bye frame closes the
	// channel.
	journal.Finish()
	if up != nil {
		if relay != nil {
			relay.Wait()
		}
		tel := dinfomap.CaptureRankTelemetry(journal, cc.rank, rec, tr.Telemetry(), up.Drops())
		if err := dinfomap.SendRankTelemetry(up, tel); err != nil {
			fmt.Fprintf(os.Stderr, "dinfomap: rank %d: telemetry section: %v\n", cc.rank, err)
		}
		up.Close()
	}
	if runErr != nil {
		return fmt.Errorf("rank %d: %w", cc.rank, runErr)
	}

	if err := writeFile(cc.artifactPath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(art)
	}); err != nil {
		return fmt.Errorf("rank %d: %w", cc.rank, err)
	}
	if journal != nil && l.tracePath != "" {
		path := fmt.Sprintf("%s.rank%d", l.tracePath, cc.rank)
		if err := writeFile(path, func(w io.Writer) error {
			return dinfomap.WriteChromeTrace(w, journal)
		}); err != nil {
			return fmt.Errorf("rank %d: %w", cc.rank, err)
		}
	}
	return nil
}

// listenerFile dups the listener's fd for inheritance by a child.
func listenerFile(ln net.Listener) (*os.File, error) {
	tl, ok := ln.(*net.TCPListener)
	if !ok {
		return nil, fmt.Errorf("listener %T cannot be passed to a child process", ln)
	}
	return tl.File()
}

func closeListeners(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			//dinfomap:close-ok idempotent shutdown of loopback listeners; double close is harmless
			ln.Close()
		}
	}
}

// killStarted tears down already-started children after a spawn error.
func killStarted(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// Command seqinfomap runs the sequential Infomap reference algorithm
// (Algorithm 1 of the paper) on an edge-list graph and reports the
// codelength, module count, and convergence traces.
//
// Usage:
//
//	seqinfomap [-seed S] [-theta T] [-out comms.txt] graph.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"dinfomap"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "random seed")
		theta   = flag.Float64("theta", 0, "MDL improvement threshold (0 = default)")
		outPath = flag.String("out", "", "write 'vertex community' lines to this file")
		traces  = flag.Bool("traces", false, "print per-iteration MDL and merge-rate traces")
	)
	flag.Parse()
	if flag.Arg(0) == "" {
		fmt.Fprintln(os.Stderr, "usage: seqinfomap [flags] graph.txt")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqinfomap:", err)
		os.Exit(1)
	}
	g, err := dinfomap.ReadEdgeList(f)
	//dinfomap:close-ok read-only file; close errors cannot lose data
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqinfomap:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	res := dinfomap.RunSequential(g, dinfomap.SequentialConfig{Seed: *seed, Theta: *theta})
	fmt.Printf("modules:     %d\n", res.NumModules)
	fmt.Printf("codelength:  %.6f bits (initial %.6f)\n", res.Codelength, res.InitialCodelength)
	fmt.Printf("iterations:  %d outer, %d moves, %d delta-L evaluations\n",
		res.OuterIterations, res.Moves, res.DeltaEvaluations)
	fmt.Printf("wall:        %v\n", time.Since(start).Round(time.Millisecond))
	if *traces {
		fmt.Printf("MDL trace:   %v\n", res.MDLTrace)
		fmt.Printf("merge rate:  %v\n", res.MergeRate)
	}

	if *outPath != "" {
		out, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seqinfomap:", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(out)
		for u, c := range res.Communities {
			fmt.Fprintf(w, "%d %d\n", u, c)
		}
		err = w.Flush()
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "seqinfomap:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"dinfomap/internal/obs"
)

// runParity compares two run reports for cross-transport parity: every
// deterministic field — quality, convergence traces, partition layout,
// traffic counters, modeled times, barrier sync counts — must match
// bit for bit, while measured host wall/wait times (nondeterministic
// by nature, and different between goroutine scheduling and OS
// processes) are ignored, along with the journal-only analysis
// sections that exist only for in-process runs. Returns an exit code.
func runParity(pathA, pathB string) int {
	a, err := loadNormalized(pathA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
		return 2
	}
	b, err := loadNormalized(pathB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
		return 2
	}
	if bytes.Equal(a, b) {
		fmt.Println("parity ok: reports agree on every deterministic field")
		return 0
	}
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	shown := 0
	for i := 0; i < len(la) && i < len(lb) && shown < 10; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			fmt.Printf("line %d differs:\n  %s: %s\n  %s: %s\n",
				i+1, pathA, la[i], pathB, lb[i])
			shown++
		}
	}
	if shown == 0 {
		fmt.Printf("reports differ in length: %d vs %d lines\n", len(la), len(lb))
	}
	fmt.Println("FAIL: transports disagree on deterministic fields")
	return 1
}

// loadNormalized parses a run report and renders it with every
// nondeterministic field scrubbed, so two normalized reports are
// byte-comparable.
func loadNormalized(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := obs.ParseReport(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	obs.ScrubVolatile(rep)
	return json.MarshalIndent(rep, "", "  ")
}

// runQuality gates a candidate run report's solution quality against a
// baseline report: the candidate codelength may exceed the baseline's
// by at most tol, relative. Timings, counters, and iteration counts
// are out of scope — this is the gate for modes that deliberately
// trade bit-reproducibility for wall clock (bounded-staleness
// asynchronous runs), where parity cannot hold but quality must.
func runQuality(basePath, candPath string, tol float64) int {
	load := func(path string) (*obs.Report, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return obs.ParseReport(data)
	}
	base, err := load(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
		return 2
	}
	cand, err := load(candPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
		return 2
	}
	rel := (cand.Quality.Codelength - base.Quality.Codelength) / base.Quality.Codelength
	fmt.Printf("codelength: baseline %.6f, candidate %.6f (%+.3f%% relative, tolerance %.3f%%)\n",
		base.Quality.Codelength, cand.Quality.Codelength, 100*rel, 100*tol)
	if rel > tol {
		fmt.Println("FAIL: candidate codelength beyond the quality gate")
		return 1
	}
	fmt.Println("quality ok")
	return 0
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"dinfomap/internal/obs"
)

// runParity compares two run reports for cross-transport parity: every
// deterministic field — quality, convergence traces, partition layout,
// traffic counters, modeled times, barrier sync counts — must match
// bit for bit, while measured host wall/wait times (nondeterministic
// by nature, and different between goroutine scheduling and OS
// processes) are ignored, along with the journal-only analysis
// sections that exist only for in-process runs. Returns an exit code.
func runParity(pathA, pathB string) int {
	a, err := loadNormalized(pathA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
		return 2
	}
	b, err := loadNormalized(pathB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
		return 2
	}
	if bytes.Equal(a, b) {
		fmt.Println("parity ok: reports agree on every deterministic field")
		return 0
	}
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	shown := 0
	for i := 0; i < len(la) && i < len(lb) && shown < 10; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			fmt.Printf("line %d differs:\n  %s: %s\n  %s: %s\n",
				i+1, pathA, la[i], pathB, lb[i])
			shown++
		}
	}
	if shown == 0 {
		fmt.Printf("reports differ in length: %d vs %d lines\n", len(la), len(lb))
	}
	fmt.Println("FAIL: transports disagree on deterministic fields")
	return 1
}

// loadNormalized parses a run report and renders it with every
// nondeterministic field scrubbed, so two normalized reports are
// byte-comparable.
func loadNormalized(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := obs.ParseReport(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	scrubReport(rep)
	return json.MarshalIndent(rep, "", "  ")
}

// scrubReport zeroes the measured host times and drops the
// journal-only sections; everything left must be bit-identical across
// transports for the same graph, config, and seed.
func scrubReport(rep *obs.Report) {
	rep.Timing.Stage1WallNs = 0
	rep.Timing.Stage2WallNs = 0
	rep.Timing.PhaseWallNs = nil
	rep.WaitStates = nil
	rep.CriticalPath = nil
	rep.LostTime = nil
	rep.Build = nil
	if rep.Comms != nil {
		scrubComm(&rep.Comms.Totals)
		scrubCommMap(rep.Comms.ByKind)
	}
	for i := range rep.Ranks {
		r := &rep.Ranks[i]
		r.Wall1Ns = 0
		r.Wall2Ns = 0
		r.PhaseWallNs = nil
		scrubComm(&r.Comm)
		scrubCommMap(r.CommByKind)
		for k := range r.Iterations {
			r.Iterations[k].WallNs = 0
			scrubComm(&r.Iterations[k].Comm)
			scrubCommMap(r.Iterations[k].CommByKind)
		}
	}
}

// scrubComm zeroes the wall-clock wait measurements of one comm
// record. The traffic counters and BarrierSyncs stay: they are
// deterministic and the parity check's point.
func scrubComm(c *obs.CommTotals) {
	c.RecvBlockedWallNs = 0
	c.RecvQueueWallNs = 0
	c.RecvsBlockedWall = 0
	c.BarrierWaitWallNs = 0
}

func scrubCommMap(m map[string]obs.CommTotals) {
	for k, c := range m {
		scrubComm(&c)
		m[k] = c
	}
}

// Command dinfomap-diff compares two directories of experiment/run JSON
// artifacts (e.g. a freshly regenerated results tree against the
// committed goldens) and fails on numeric regressions:
//
//	dinfomap-diff [flags] baseline/ candidate/
//
// Only files present in both directories are compared, so a partial
// regeneration diffs cleanly against the full golden set. Host
// wall-clock fields are ignored; codelength fields fail on any
// increase, modeled-time and per-kind byte fields fail beyond their
// relative thresholds; everything else is informational.
//
// Exit status: 0 clean, 1 regressions found, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dinfomap/internal/obs"
	"dinfomap/internal/regress"
)

func main() {
	var (
		codelengthTol = flag.Float64("codelength-tol", regress.DefaultCodelengthTol,
			"relative codelength increase tolerated before failing")
		modeledTol = flag.Float64("modeled-tol", regress.DefaultModeledTol,
			"relative modeled-time increase tolerated before failing")
		bytesTol = flag.Float64("bytes-tol", regress.DefaultBytesTol,
			"relative traffic-bytes increase tolerated before failing")
		reportPath = flag.String("report", "", "write the JSON diff report to this file")
		verbose    = flag.Bool("v", false, "print informational findings, not just regressions")
		parity     = flag.Bool("parity", false,
			"compare two run-report FILES for cross-transport parity: deterministic fields bit-exact, host wall/wait times ignored")
		quality = flag.Bool("quality", false,
			"gate a candidate run-report FILE's codelength against a baseline report's within -codelength-tol (for async runs, where parity cannot hold)")
		version = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dinfomap-diff [flags] <baseline-dir> <candidate-dir>\n"+
				"       dinfomap-diff -parity <report-a.json> <report-b.json>\n"+
				"       dinfomap-diff -quality [-codelength-tol F] <baseline.json> <candidate.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(obs.ReadBuild().String())
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *parity {
		os.Exit(runParity(flag.Arg(0), flag.Arg(1)))
	}
	if *quality {
		os.Exit(runQuality(flag.Arg(0), flag.Arg(1), *codelengthTol))
	}

	rep, err := regress.Diff(flag.Arg(0), flag.Arg(1), regress.Options{
		CodelengthTol: *codelengthTol,
		ModeledTol:    *modeledTol,
		BytesTol:      *bytesTol,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
		os.Exit(2)
	}

	if *reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*reportPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dinfomap-diff:", err)
			os.Exit(2)
		}
	}

	fmt.Printf("compared %d files, %d numeric leaves: %d findings, %d regressions\n",
		len(rep.Files), rep.Compared, len(rep.Findings), rep.Regressions)
	for _, f := range rep.OnlyBaseline {
		fmt.Printf("  only in baseline:  %s\n", f)
	}
	for _, f := range rep.OnlyCandidate {
		fmt.Printf("  only in candidate: %s\n", f)
	}
	for _, f := range rep.Findings {
		if f.Regression || *verbose {
			fmt.Println(f)
		}
	}
	if rep.Failed() {
		fmt.Println("FAIL: regressions beyond thresholds")
		os.Exit(1)
	}
	fmt.Println("ok")
}

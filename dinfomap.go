// Package dinfomap is a Go implementation of the distributed Infomap
// community detection algorithm of Zeng & Yu (ICPP 2018), together with
// the sequential Infomap reference, delegate partitioning, baseline
// algorithms (Louvain, RelaxMap-style shared-memory, GossipMap-style
// distributed), graph generators, and quality metrics.
//
// # Quickstart
//
//	g := dinfomap.GeneratePlanted(dinfomap.PlantedConfig{
//	    N: 10000, NumComms: 50, AvgDegree: 10, Mixing: 0.2,
//	}, 42).Graph
//	res := dinfomap.RunDistributed(g, dinfomap.DistributedConfig{P: 8})
//	fmt.Println(res.NumModules, res.Codelength)
//
// The distributed algorithm simulates its processors as goroutines over
// an in-process message-passing runtime with exact byte accounting; see
// DESIGN.md for how that maps onto the paper's MPI implementation.
package dinfomap

import (
	"io"
	"net"
	"net/http"
	"time"

	"dinfomap/internal/core"
	"dinfomap/internal/gen"
	"dinfomap/internal/gossip"
	"dinfomap/internal/graph"
	"dinfomap/internal/infomap"
	"dinfomap/internal/louvain"
	"dinfomap/internal/metrics"
	"dinfomap/internal/mpi"
	"dinfomap/internal/obs"
	"dinfomap/internal/partition"
	"dinfomap/internal/relax"
	"dinfomap/internal/report"
)

// Graph is the shared CSR graph type. Build one with NewBuilder,
// FromEdges, ReadEdgeList, or a generator.
type Graph = graph.Graph

// Builder accumulates undirected edges; call Build to obtain a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for a graph with n vertices (growing
// automatically as larger vertex ids appear).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds an unweighted undirected graph from an edge list.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a whitespace-separated "u v [w]" edge list.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g as a text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// DegreeStats summarizes a degree distribution; see ComputeDegreeStats.
type DegreeStats = graph.DegreeStats

// ComputeDegreeStats returns degree-distribution statistics of g.
func ComputeDegreeStats(g *Graph) DegreeStats { return graph.ComputeDegreeStats(g) }

// ---- Generators ----

// PlantedConfig parameterizes the planted-partition generator.
type PlantedConfig = gen.PlantedConfig

// PlantedGraph bundles a generated graph with its ground truth.
type PlantedGraph struct {
	Graph *Graph
	Truth []int // planted community of each vertex
}

// GeneratePlanted creates a graph with known community structure.
func GeneratePlanted(cfg PlantedConfig, seed uint64) PlantedGraph {
	g, truth := gen.PlantedPartition(seed, cfg)
	return PlantedGraph{Graph: g, Truth: truth}
}

// GeneratePowerLaw creates a scale-free Chung-Lu graph with n vertices,
// power-law exponent gamma, and degrees in [dmin, dmax].
func GeneratePowerLaw(seed uint64, n int, gamma float64, dmin, dmax int) *Graph {
	return gen.PowerLawGraph(seed, n, gamma, dmin, dmax)
}

// GenerateBarabasiAlbert creates a preferential-attachment graph with n
// vertices, m edges per new vertex.
func GenerateBarabasiAlbert(seed uint64, n, m int) *Graph {
	return gen.BarabasiAlbert(seed, n, m)
}

// Dataset describes one synthetic stand-in for a paper dataset.
type Dataset = gen.Dataset

// Datasets returns the names of the Table 1 stand-in datasets.
func Datasets() []string { return gen.Names() }

// LookupDataset returns a stand-in dataset by name (e.g. "amazon",
// "uk-2007").
func LookupDataset(name string) (Dataset, error) { return gen.Lookup(name) }

// ---- Algorithms ----

// SequentialConfig controls the sequential Infomap reference
// (Algorithm 1 of the paper).
type SequentialConfig = infomap.Config

// SequentialResult is a sequential Infomap result.
type SequentialResult = infomap.Result

// RunSequential executes sequential Infomap on g.
func RunSequential(g *Graph, cfg SequentialConfig) *SequentialResult {
	return infomap.Run(g, cfg)
}

// DistributedConfig controls the distributed Infomap algorithm
// (Algorithm 2 of the paper). P is the number of simulated ranks.
type DistributedConfig = core.Config

// DistributedResult is a distributed Infomap result, including the MDL
// and merge-rate traces, per-phase modeled times, and per-rank
// communication statistics used by the experiment harness.
type DistributedResult = core.Result

// RunDistributed executes the distributed Infomap algorithm on g.
func RunDistributed(g *Graph, cfg DistributedConfig) *DistributedResult {
	return core.Run(g, cfg)
}

// ---- Multi-process transport ----

// Transport is the message-passing backend a distributed rank runs
// over: the in-process goroutine transport (what RunDistributed uses)
// or the socket-based proc transport connecting one OS process per
// rank. See internal/mpi for the contract.
type Transport = mpi.Transport

// ProcTransportConfig describes one rank's endpoint of a multi-process
// world: its listener, the full address table, and the shared epoch.
type ProcTransportConfig = mpi.ProcConfig

// DialProcTransport establishes the full peer mesh for one rank of a
// multi-process world and returns its transport. It blocks until every
// peer connection is established and handshaken (rank identity, world
// size, build version) or the connect timeout expires.
func DialProcTransport(cfg ProcTransportConfig, opts ...RunOption) (*mpi.ProcTransport, error) {
	return mpi.DialProc(cfg, opts...)
}

// ListenRanks binds one listener per rank ("tcp" on loopback, or "unix"
// with sockets under dir) and returns the listeners with their address
// table, for distribution to the rank processes.
func ListenRanks(network string, size int, dir string) ([]net.Listener, []string, error) {
	return mpi.ListenRanks(network, size, dir)
}

// RunOption adjusts a distributed world's runtime behavior.
type RunOption = mpi.RunOpt

// WithRankTimeout bounds how long a rank may sit blocked in one receive
// or synchronization point before the run is declared deadlocked.
func WithRankTimeout(d time.Duration) RunOption { return mpi.WithTimeout(d) }

// WithConnectTimeout bounds the connect/handshake phase of
// DialProcTransport; it never overlaps the rank timeout, which starts
// only once the mesh is up.
func WithConnectTimeout(d time.Duration) RunOption { return mpi.WithConnectTimeout(d) }

// RankArtifact is one rank's serializable contribution to a
// distributed result; see RunDistributedRank and AssembleDistributed.
type RankArtifact = core.RankArtifact

// RunDistributedRank executes one rank of the distributed algorithm
// over an explicit transport and returns its artifact. All ranks of the
// world run the same call with the same graph and config; rank 0's
// artifact carries the rank-identical outputs.
func RunDistributedRank(g *Graph, cfg DistributedConfig, t Transport) (*RankArtifact, error) {
	return core.RunRank(g, cfg, t)
}

// AssembleDistributed combines one artifact per rank into the full
// result — the multi-process counterpart of RunDistributed's return
// value, bit-identical to it for the same graph, config, and seed.
func AssembleDistributed(cfg DistributedConfig, artifacts []*RankArtifact) (*DistributedResult, error) {
	return core.Assemble(cfg, artifacts)
}

// LouvainConfig controls the Louvain baseline.
type LouvainConfig = louvain.Config

// LouvainResult is a Louvain result.
type LouvainResult = louvain.Result

// RunLouvain executes the sequential Louvain algorithm on g.
func RunLouvain(g *Graph, cfg LouvainConfig) *LouvainResult {
	return louvain.Run(g, cfg)
}

// RelaxConfig controls the RelaxMap-style shared-memory baseline.
type RelaxConfig = relax.Config

// RelaxResult is a RelaxMap-style result.
type RelaxResult = relax.Result

// RunRelax executes the shared-memory parallel Infomap baseline on g.
func RunRelax(g *Graph, cfg RelaxConfig) *RelaxResult {
	return relax.Run(g, cfg)
}

// GossipConfig controls the GossipMap-style distributed baseline.
type GossipConfig = gossip.Config

// GossipResult is a GossipMap-style result.
type GossipResult = gossip.Result

// RunGossip executes the distributed label-propagation baseline on g.
func RunGossip(g *Graph, cfg GossipConfig) *GossipResult {
	return gossip.Run(g, cfg)
}

// ---- Observability ----

// RunJournal is the per-rank event journal of a distributed run: one
// record per phase per synchronized sweep, per rank. Create one with
// NewRunJournal, assign it to DistributedConfig.Journal, then export it
// with WriteChromeTrace after RunDistributed returns.
type RunJournal = obs.Journal

// NewRunJournal returns an event journal for p ranks.
func NewRunJournal(p int) *RunJournal { return obs.NewJournal(p) }

// NewRunJournalAt returns an event journal for p ranks anchored to an
// explicit epoch (zero means now). A multi-process launcher shares its
// epoch with every child so all stamps live on one timeline.
func NewRunJournalAt(p int, epoch time.Time) *RunJournal {
	return obs.NewJournalAt(p, epoch)
}

// NewRankJournal returns a p-rank journal allocating only rank's own
// row — the shape a child process of a multi-process run uses (foreign
// rows are valid no-op sinks).
func NewRankJournal(rank, p int, epoch time.Time) *RunJournal {
	return obs.NewRankJournal(rank, p, epoch)
}

// NewWaitRecorder returns a wait-state recorder for a world of the
// given rank count, anchored to epoch (zero means now). Assign it to
// DistributedConfig.Recorder to record raw wait events explicitly —
// multi-process children do, so the launcher can merge them.
func NewWaitRecorder(ranks int, epoch time.Time) *WaitRecorder {
	return mpi.NewRecorder(ranks, epoch)
}

// WriteChromeTrace exports a run journal as Chrome trace-event JSON
// (one timeline row per rank), viewable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, j *RunJournal) error {
	return obs.WriteChromeTrace(w, j)
}

// WaitRecorder holds the raw wait-state events of a journaled
// distributed run (matched p2p receives and barrier arrival/release
// times); RunDistributed fills DistributedResult.WaitRecorder whenever
// DistributedConfig.Journal is set.
type WaitRecorder = mpi.Recorder

// WriteChromeTraceWith exports a run journal together with the run's
// wait-state events: Perfetto flow arrows for every matched send->recv
// pair and a "blocked ranks" counter track showing how many ranks sit
// in a blocked receive or barrier wait at each instant. rec may be nil,
// which reduces to WriteChromeTrace.
func WriteChromeTraceWith(w io.Writer, j *RunJournal, rec *WaitRecorder) error {
	return obs.WriteChromeTraceWith(w, j, rec)
}

// BuildProvenance is the running binary's build identity (module
// version, VCS revision); run reports embed it and -version prints it.
type BuildProvenance = obs.BuildInfo

// ReadBuildProvenance reads the binary's build info via runtime/debug.
func ReadBuildProvenance() BuildProvenance { return obs.ReadBuild() }

// RunLiveMetrics is the live Prometheus aggregation of a run journal;
// RegisterRunDebugHandlers returns it so multi-process launchers can
// feed it cross-process transport counters.
type RunLiveMetrics = obs.Metrics

// RegisterRunDebugHandlers mounts the live observability endpoints for
// j on mux: an SSE stream of journal events as they are emitted
// (/debug/dinfomap/events), a JSON status snapshot
// (/debug/dinfomap/status), and a Prometheus text exposition of
// per-rank span and per-kind traffic counters
// (/debug/dinfomap/metrics). All are safe to hit while RunDistributed
// is executing; a slow or stalled consumer never blocks the ranks. The
// returned metrics handle may be ignored.
func RegisterRunDebugHandlers(mux *http.ServeMux, j *RunJournal) *RunLiveMetrics {
	return obs.RegisterDebugHandlers(mux, j)
}

// ---- Multi-process telemetry ----

// TransportStats is one rank's wire-level transport counter snapshot
// (frames/bytes per peer, connect retries, handshake latency, poison
// events) on a multi-process run.
type TransportStats = mpi.TransportStats

// ClockEstimate is the launcher's per-rank clock-offset estimate on a
// multi-process run; see the report's clocks section and
// dinfomap-analyze's residual check.
type ClockEstimate = obs.ClockEstimate

// TelemetryUplink is the child-process end of the launcher's telemetry
// side channel: journal events, live stats snapshots, and the final
// telemetry section flow through it without ever blocking the rank.
type TelemetryUplink = mpi.Uplink

// TelemetryUplinkConfig wires one rank's telemetry uplink.
type TelemetryUplinkConfig = mpi.UplinkConfig

// DialTelemetryUplink connects a rank process to the launcher's
// telemetry listener.
func DialTelemetryUplink(network, addr string, cfg TelemetryUplinkConfig) (*TelemetryUplink, error) {
	return mpi.DialUplink(network, addr, cfg)
}

// TelemetryUplinkPeer is the launcher end of one child's uplink.
type TelemetryUplinkPeer = mpi.UplinkPeer

// AcceptTelemetryUplink handshakes an accepted uplink connection.
func AcceptTelemetryUplink(conn net.Conn, size int, epoch time.Time, version string, timeout time.Duration) (*TelemetryUplinkPeer, error) {
	return mpi.AcceptUplink(conn, size, epoch, version, timeout)
}

// TelemetryRelay forwards a child's live journal flow onto its uplink.
type TelemetryRelay = obs.Relay

// StartTelemetryRelay starts forwarding journal events and periodic
// stats snapshots from j over up; see obs.StartRelay.
func StartTelemetryRelay(j *RunJournal, rank int, up *TelemetryUplink, transport func() *TransportStats, statsEvery time.Duration) *TelemetryRelay {
	return obs.StartRelay(j, rank, up, transport, statsEvery)
}

// RankTelemetry is one rank's complete post-run telemetry section.
type RankTelemetry = obs.RankTelemetry

// CaptureRankTelemetry packages a finished rank's telemetry section.
func CaptureRankTelemetry(j *RunJournal, rank int, rec *WaitRecorder, ts *TransportStats, liveDrops int64) *RankTelemetry {
	return obs.CaptureTelemetry(j, rank, rec, ts, liveDrops)
}

// SendRankTelemetry ships the final section over the uplink, blocking.
func SendRankTelemetry(up *TelemetryUplink, rt *RankTelemetry) error {
	return obs.SendTelemetry(up, rt)
}

// MeshCollector is the launcher-side sink for all ranks' uplinks: live
// events feed a parent journal, clock offsets are estimated from
// ping/pong samples, and the final sections merge into one aligned
// journal + wait recorder.
type MeshCollector = obs.Collector

// NewMeshCollector returns a collector for a p-rank world feeding the
// given live journal and metrics (each may be nil).
func NewMeshCollector(p int, j *RunJournal, m *RunLiveMetrics) *MeshCollector {
	return obs.NewCollector(p, j, m)
}

// MergeRankTelemetry assembles per-rank telemetry sections into one
// clock-aligned journal and wait recorder on the launcher timeline.
func MergeRankTelemetry(p int, epoch time.Time, sections []*RankTelemetry, clocks []ClockEstimate) (*RunJournal, *WaitRecorder) {
	return obs.MergeTelemetry(p, epoch, sections, clocks)
}

// RunReport is the structured, stable-schema JSON report of one
// distributed run; see BuildRunReport.
type RunReport = obs.Report

// BuildRunReport assembles the machine-readable run report (convergence
// traces, modeled and host timings, per-rank per-phase costs) from a
// finished distributed run. cfg should be the config passed to
// RunDistributed. Serialize with RunReport.WriteJSON.
func BuildRunReport(g *Graph, cfg DistributedConfig, res *DistributedResult) *RunReport {
	return core.BuildReport(g, cfg, res)
}

// ---- Quality measures ----

// Quality bundles NMI, F-measure, and Jaccard index (Table 2).
type Quality = metrics.Quality

// ComparePartitions computes NMI, F-measure, and Jaccard between two
// partitions of the same vertex set.
func ComparePartitions(a, b []int) Quality { return metrics.Compare(a, b) }

// NMI returns the normalized mutual information of two partitions.
func NMI(a, b []int) float64 { return metrics.NMI(a, b) }

// Modularity returns the Newman modularity of comm on g.
func Modularity(g *Graph, comm []int) float64 { return metrics.Modularity(g, comm) }

// CodelengthOf evaluates the two-level map equation of an arbitrary
// partition on g (lower is better).
func CodelengthOf(g *Graph, comm []int) float64 { return infomap.CodelengthOf(g, comm) }

// ---- Reporting ----

// CommunitySummary describes a detected partition; see SummarizeCommunities.
type CommunitySummary = report.Summary

// SummarizeCommunities computes per-community statistics (sizes,
// internal/cut weight, conductance) of comm on g.
func SummarizeCommunities(g *Graph, comm []int) *CommunitySummary {
	return report.Summarize(g, comm)
}

// WriteCommunityDOT writes the community quotient graph in GraphViz DOT
// format (largest maxNodes communities; 0 means 100).
func WriteCommunityDOT(w io.Writer, g *Graph, comm []int, maxNodes int) error {
	return report.WriteDOT(w, g, comm, maxNodes)
}

// ---- Partitioning analysis ----

// BalanceStats summarizes per-rank edge and ghost balance of a layout.
type BalanceStats = partition.BalanceStats

// Analyze1D computes the balance of plain 1D round-robin partitioning
// of g over p ranks (the baseline of Figures 6-7).
func Analyze1D(g *Graph, p int) BalanceStats {
	return partition.OneD(g, p).Stats()
}

// AnalyzeDelegate computes the balance of delegate partitioning of g
// over p ranks with the paper's default threshold (d_high = p).
func AnalyzeDelegate(g *Graph, p int) BalanceStats {
	return partition.Delegate(g, p, partition.DelegateOptions{}).Stats()
}

package dinfomap

import "testing"

func TestTrialsNeverWorseThanSingle(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 8, Mixing: 0.25,
	}, 7)
	single := RunSequential(pg.Graph, SequentialConfig{Seed: 1})
	multi := RunSequentialTrials(pg.Graph, SequentialConfig{Seed: 1}, 4)
	if multi.Codelength > single.Codelength {
		t.Fatalf("4 trials (%.4f) worse than 1 trial (%.4f)",
			multi.Codelength, single.Codelength)
	}
}

func TestTrialsDistributed(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 300, NumComms: 6, AvgDegree: 8, Mixing: 0.2,
	}, 9)
	single := RunDistributed(pg.Graph, DistributedConfig{P: 3, Seed: 1})
	multi := RunDistributedTrials(pg.Graph, DistributedConfig{P: 3, Seed: 1}, 3)
	if multi.Codelength > single.Codelength {
		t.Fatalf("3 trials (%.4f) worse than 1 (%.4f)",
			multi.Codelength, single.Codelength)
	}
}

func TestTrialsDirected(t *testing.T) {
	b := NewDirectedBuilder(6)
	for _, base := range []int{0, 3} {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i != j {
					b.AddArc(base+i, base+j)
				}
			}
		}
	}
	b.AddArc(0, 3)
	g := b.Build()
	single := RunDirected(g, DirectedConfig{Seed: 1})
	multi := RunDirectedTrials(g, DirectedConfig{Seed: 1}, 3)
	if multi.Codelength > single.Codelength {
		t.Fatalf("trials made it worse: %v vs %v", multi.Codelength, single.Codelength)
	}
}

func TestTrialsDegenerateCount(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 100, NumComms: 4, AvgDegree: 6, Mixing: 0.2,
	}, 11)
	if r := RunSequentialTrials(pg.Graph, SequentialConfig{Seed: 1}, 0); r == nil {
		t.Fatal("trials=0 returned nil")
	}
	if r := RunDistributedTrials(pg.Graph, DistributedConfig{P: 2, Seed: 1}, -3); r == nil {
		t.Fatal("trials=-3 returned nil")
	}
}

package dinfomap

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Section 4), plus the ablation benches listed
// in DESIGN.md Section 5. Each benchmark regenerates its experiment at
// a reduced scale and reports the headline quantity of the
// corresponding table/figure through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduction's key numbers alongside the usual ns/op.
// cmd/experiments regenerates the full-scale tables.

import (
	"testing"
	"time"

	"dinfomap/internal/experiments"
	"dinfomap/internal/trace"
)

// benchOpts keeps the full -bench=. sweep around a minute.
var benchOpts = experiments.Options{Scale: 0.1, Seed: 7}

func BenchmarkTable1Datasets(b *testing.B) {
	var edges int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		edges = 0
		for _, r := range rows {
			edges += r.Edges
		}
	}
	b.ReportMetric(float64(edges), "edges-generated")
}

func BenchmarkFig4Convergence(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunFig4(benchOpts, 4, []string{"amazon", "dblp"})
		if err != nil {
			b.Fatal(err)
		}
		gap = 0
		for _, r := range rs {
			if g := r.RelGap; g > gap {
				gap = g
			}
		}
	}
	b.ReportMetric(100*gap, "max-MDL-gap-%")
}

func BenchmarkFig5MergeRate(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunFig5(benchOpts, 4, []string{"amazon"})
		if err != nil {
			b.Fatal(err)
		}
		rate = rs[0].Distributed[0]
	}
	b.ReportMetric(100*rate, "stage1-merge-%")
}

func BenchmarkTable2Quality(b *testing.B) {
	var nmi float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(benchOpts, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		nmi = 0
		for _, r := range rows {
			nmi += r.Quality.NMI
		}
		nmi /= float64(len(rows))
	}
	b.ReportMetric(nmi, "mean-NMI")
}

func BenchmarkFig6Workload(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunBalance(benchOpts, []string{"uk-2005"}, []int{16})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		ratio = float64(r.OneDMaxEdges) / float64(r.DelMaxEdges)
	}
	b.ReportMetric(ratio, "1D/delegate-max-edges")
}

func BenchmarkFig7Ghosts(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunBalance(benchOpts, []string{"friendster"}, []int{16})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		spread = float64(r.OneDMaxGhosts-r.OneDMinGhosts) /
			float64(max(1, r.DelMaxGhosts-r.DelMinGhosts))
	}
	b.ReportMetric(spread, "1D/delegate-ghost-spread")
}

func BenchmarkFig8Breakdown(b *testing.B) {
	var find time.Duration
	for i := 0; i < b.N; i++ {
		bs, err := experiments.RunFig8(benchOpts, "uk-2005", []int{4, 8})
		if err != nil {
			b.Fatal(err)
		}
		find = bs[len(bs)-1].Phases[trace.PhaseFindBestModule]
	}
	b.ReportMetric(float64(find.Microseconds()), "find-best-us-at-p8")
}

func BenchmarkFig9Scalability(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig9(benchOpts, []string{"uk-2005"}, []int{2, 8})
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(rows[0].Total) / float64(rows[1].Total)
	}
	b.ReportMetric(speedup, "modeled-speedup-2to8")
}

func BenchmarkFig10Efficiency(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig10(benchOpts, []string{"youtube"}, []int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		eff = rows[0].Efficiency[len(rows[0].Efficiency)-1]
	}
	b.ReportMetric(100*eff, "efficiency-%-at-p8")
}

func BenchmarkTable3Speedup(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable3(benchOpts, []string{"uk-2005"}, 8)
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[0].Speedup
	}
	b.ReportMetric(speedup, "speedup-vs-gossip")
}

// ---- Ablation benches (DESIGN.md Section 5) ----

func BenchmarkAblationThreshold(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationThreshold(benchOpts, "uk-2005", 8)
		if err != nil {
			b.Fatal(err)
		}
		// Max-rank load without delegates over the paper default.
		ratio = float64(rows[3].MaxEdges) / float64(max(1, rows[1].MaxEdges))
	}
	b.ReportMetric(ratio, "noDelegate/default-load")
}

func BenchmarkAblationMinLabel(b *testing.B) {
	var extra float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationMinLabel(benchOpts, "dblp", 4)
		if err != nil {
			b.Fatal(err)
		}
		extra = float64(rows[1].Iterations) / float64(max(1, rows[0].Iterations))
	}
	b.ReportMetric(extra, "off/on-stage1-iters")
}

func BenchmarkAblationDedup(b *testing.B) {
	var inflate float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationDedup(benchOpts, "amazon", 4)
		if err != nil {
			b.Fatal(err)
		}
		inflate = float64(rows[1].Bytes) / float64(max(1, int(rows[0].Bytes)))
	}
	b.ReportMetric(inflate, "noDedup/dedup-bytes")
}

func BenchmarkAblationRebalance(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationRebalance(benchOpts, "uk-2005", 8)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(rows[1].MaxEdges) / float64(max(1, rows[0].MaxEdges))
	}
	b.ReportMetric(ratio, "off/on-max-edges")
}

func BenchmarkAblationApproxDelegates(b *testing.B) {
	var dNMI float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationApproxDelegates(benchOpts, "youtube", 4)
		if err != nil {
			b.Fatal(err)
		}
		dNMI = rows[0].SeqNMI - rows[1].SeqNMI
	}
	b.ReportMetric(dNMI, "exact-minus-approx-NMI")
}

func BenchmarkAblationDamping(b *testing.B) {
	var dNMI float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationDamping(benchOpts, "ndweb", 8)
		if err != nil {
			b.Fatal(err)
		}
		dNMI = rows[0].SeqNMI - rows[1].SeqNMI
	}
	b.ReportMetric(dNMI, "damped-minus-undamped-NMI")
}

// ---- Core primitive benches ----

func BenchmarkSequentialInfomap(b *testing.B) {
	pg := GeneratePlanted(PlantedConfig{
		N: 2000, NumComms: 40, AvgDegree: 10, Mixing: 0.2, DegreeGamma: 2.5,
	}, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSequential(pg.Graph, SequentialConfig{Seed: uint64(i)})
	}
}

func BenchmarkDistributedInfomapP4(b *testing.B) {
	pg := GeneratePlanted(PlantedConfig{
		N: 2000, NumComms: 40, AvgDegree: 10, Mixing: 0.2, DegreeGamma: 2.5,
	}, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunDistributed(pg.Graph, DistributedConfig{P: 4, Seed: uint64(i)})
	}
}

func BenchmarkDelegatePartitioning(b *testing.B) {
	g := GeneratePowerLaw(13, 20000, 2.0, 2, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeDelegate(g, 16)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

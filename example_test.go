package dinfomap_test

// Godoc examples: runnable documentation for the main public entry
// points. These also serve as compile-and-output-checked smoke tests.

import (
	"fmt"

	"dinfomap"
)

func ExampleRunSequential() {
	// Two triangles joined by a bridge: the canonical two-community graph.
	g := dinfomap.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{2, 3},
	})
	res := dinfomap.RunSequential(g, dinfomap.SequentialConfig{Seed: 1})
	fmt.Println("modules:", res.NumModules)
	fmt.Println("same community:", res.Communities[0] == res.Communities[1])
	// Output:
	// modules: 2
	// same community: true
}

func ExampleRunDistributed() {
	g := dinfomap.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{2, 3},
	})
	res := dinfomap.RunDistributed(g, dinfomap.DistributedConfig{P: 2, Seed: 1})
	fmt.Println("modules:", res.NumModules)
	fmt.Println("triangles separated:", res.Communities[0] != res.Communities[3])
	// Output:
	// modules: 2
	// triangles separated: true
}

func ExampleGeneratePlanted() {
	pg := dinfomap.GeneratePlanted(dinfomap.PlantedConfig{
		N: 300, NumComms: 6, AvgDegree: 8, Mixing: 0.1,
	}, 42)
	res := dinfomap.RunSequential(pg.Graph, dinfomap.SequentialConfig{Seed: 1})
	fmt.Println("recovered planted communities:", dinfomap.NMI(res.Communities, pg.Truth) > 0.9)
	// Output:
	// recovered planted communities: true
}

func ExampleComparePartitions() {
	a := []int{0, 0, 1, 1}
	b := []int{5, 5, 9, 9} // identical up to labels
	fmt.Println(dinfomap.ComparePartitions(a, b))
	// Output:
	// NMI=1.00 F=1.00 JI=1.00
}

func ExampleRunDirected() {
	// Two directed 3-cycles joined by one weak arc pair.
	b := dinfomap.NewDirectedBuilder(6)
	for _, base := range []int{0, 3} {
		b.AddArc(base, base+1)
		b.AddArc(base+1, base+2)
		b.AddArc(base+2, base)
		b.AddArc(base+1, base)
		b.AddArc(base+2, base+1)
		b.AddArc(base, base+2)
	}
	b.AddArc(0, 3)
	b.AddArc(3, 0)
	res := dinfomap.RunDirected(b.Build(), dinfomap.DirectedConfig{Seed: 1})
	fmt.Println("modules:", res.NumModules)
	// Output:
	// modules: 2
}

func ExampleAnalyzeDelegate() {
	// A star: the hub makes block-1D partitioning lopsided, while
	// delegate partitioning splits the hub's edges across ranks.
	bld := dinfomap.NewBuilder(33)
	for v := 1; v <= 32; v++ {
		bld.AddEdge(0, v)
	}
	g := bld.Build()
	oneD := dinfomap.Analyze1D(g, 4)
	del := dinfomap.AnalyzeDelegate(g, 4)
	fmt.Println("1D balanced:", oneD.MaxEdges-oneD.MinEdges <= 2)
	fmt.Println("delegate balanced:", del.MaxEdges-del.MinEdges <= 2)
	// Output:
	// 1D balanced: false
	// delegate balanced: true
}

package dinfomap

// Integration tests: cross-module workflows through the public API —
// file round trips feeding algorithms, weighted graphs, cross-algorithm
// consistency, and determinism of full pipelines.

import (
	"bytes"
	"math"
	"testing"
)

// TestFileWorkflow drives the full user workflow: generate, write to an
// edge list, read back, cluster, and compare against clustering the
// original graph directly.
func TestFileWorkflow(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 500, NumComms: 10, AvgDegree: 8, Mixing: 0.2,
	}, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, pg.Graph); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := RunDistributed(pg.Graph, DistributedConfig{P: 4, Seed: 9})
	b := RunDistributed(g2, DistributedConfig{P: 4, Seed: 9})
	if a.Codelength != b.Codelength {
		t.Fatalf("file round trip changed the result: %v vs %v", a.Codelength, b.Codelength)
	}
}

// TestWeightedGraphsSupported verifies the full stack accepts weighted
// graphs: heavier intra-cluster edges should dominate the partition
// even when topology alone is ambiguous.
func TestWeightedGraphsSupported(t *testing.T) {
	// A 6-cycle where alternating heavy edges define three pairs.
	b := NewBuilder(6)
	heavy := 10.0
	for i := 0; i < 6; i++ {
		w := 1.0
		if i%2 == 0 {
			w = heavy
		}
		b.AddWeightedEdge(i, (i+1)%6, w)
	}
	g := b.Build()
	seq := RunSequential(g, SequentialConfig{Seed: 1})
	if seq.NumModules != 3 {
		t.Fatalf("weighted sequential found %d modules, want 3 heavy pairs", seq.NumModules)
	}
	for i := 0; i < 6; i += 2 {
		if seq.Communities[i] != seq.Communities[i+1] {
			t.Fatalf("heavy pair (%d,%d) split: %v", i, i+1, seq.Communities)
		}
	}
	dist := RunDistributed(g, DistributedConfig{P: 2, Seed: 1})
	if dist.NumModules != 3 {
		t.Fatalf("weighted distributed found %d modules, want 3", dist.NumModules)
	}
}

// TestAllAlgorithmsAgreeOnStrongStructure: with very strong community
// structure, all five algorithms must find essentially the same answer.
func TestAllAlgorithmsAgreeOnStrongStructure(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 600, NumComms: 10, AvgDegree: 12, Mixing: 0.05,
	}, 17)
	g := pg.Graph
	partitions := map[string][]int{
		"sequential":  RunSequential(g, SequentialConfig{Seed: 2}).Communities,
		"distributed": RunDistributed(g, DistributedConfig{P: 4, Seed: 2}).Communities,
		"relax":       RunRelax(g, RelaxConfig{Workers: 4, Seed: 2}).Communities,
		"gossip":      RunGossip(g, GossipConfig{P: 4, Seed: 2}).Communities,
		"louvain":     RunLouvain(g, LouvainConfig{Seed: 2}).Communities,
	}
	for name, comm := range partitions {
		if nmi := NMI(comm, pg.Truth); nmi < 0.95 {
			t.Errorf("%s: NMI vs truth = %.3f on trivially clustered graph", name, nmi)
		}
	}
}

// TestCodelengthOrderingInvariant: for any partition pair on the same
// graph, CodelengthOf must rank the sequential result at least as well
// as a random partition.
func TestCodelengthOrderingInvariant(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 400, NumComms: 8, AvgDegree: 8, Mixing: 0.2,
	}, 23)
	g := pg.Graph
	seq := RunSequential(g, SequentialConfig{Seed: 3})
	// A deliberately bad partition: round-robin into 8 buckets.
	bad := make([]int, g.NumVertices())
	for i := range bad {
		bad[i] = i % 8
	}
	if CodelengthOf(g, seq.Communities) >= CodelengthOf(g, bad) {
		t.Fatal("sequential partition not better than round-robin buckets")
	}
	// Ground truth should be near the sequential optimum.
	if CodelengthOf(g, pg.Truth) > seq.Codelength*1.1 {
		t.Fatal("planted truth codelength suspiciously far from optimized")
	}
}

// TestDistributedResultRanksIdentical re-runs with multiple P values
// and checks invariant bookkeeping: community ids dense, codelength
// exact, traces non-empty, partition stats populated.
func TestDistributedResultInvariants(t *testing.T) {
	pg := GeneratePlanted(PlantedConfig{
		N: 300, NumComms: 6, AvgDegree: 8, Mixing: 0.2,
	}, 29)
	for _, p := range []int{1, 3, 5, 8} {
		res := RunDistributed(pg.Graph, DistributedConfig{P: p, Seed: 4})
		if len(res.Communities) != pg.Graph.NumVertices() {
			t.Fatalf("p=%d: %d assignments for %d vertices",
				p, len(res.Communities), pg.Graph.NumVertices())
		}
		if got := CodelengthOf(pg.Graph, res.Communities); math.Abs(got-res.Codelength) > 1e-6 {
			t.Errorf("p=%d: reported L %v, actual %v", p, res.Codelength, got)
		}
		if len(res.MDLTrace) == 0 || len(res.MergeRate) == 0 {
			t.Errorf("p=%d: traces missing", p)
		}
		if len(res.CommStats) != p {
			t.Errorf("p=%d: %d comm stats", p, len(res.CommStats))
		}
	}
}

// TestSelfLoopGraphEndToEnd: self-loops must survive the whole pipeline.
func TestSelfLoopGraphEndToEnd(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	seq := RunSequential(g, SequentialConfig{Seed: 1})
	dist := RunDistributed(g, DistributedConfig{P: 2, Seed: 1})
	if math.Abs(CodelengthOf(g, dist.Communities)-dist.Codelength) > 1e-9 {
		t.Fatal("distributed codelength inconsistent with self-loops")
	}
	if seq.Communities[2] != seq.Communities[3] {
		t.Fatal("sequential split the 2-3 pair")
	}
	if dist.Communities[2] != dist.Communities[3] {
		t.Fatal("distributed split the 2-3 pair")
	}
}

// TestStarGraphAllAlgorithms: a star is one module under the map
// equation; no algorithm may crash or split it badly.
func TestStarGraphAllAlgorithms(t *testing.T) {
	b := NewBuilder(51)
	for v := 1; v <= 50; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	if r := RunSequential(g, SequentialConfig{Seed: 1}); r.NumModules != 1 {
		t.Errorf("sequential: %d modules on a star", r.NumModules)
	}
	if r := RunDistributed(g, DistributedConfig{P: 4, Seed: 1}); r.NumModules != 1 {
		t.Errorf("distributed: %d modules on a star", r.NumModules)
	}
	if r := RunRelax(g, RelaxConfig{Workers: 2, Seed: 1}); r.NumModules != 1 {
		t.Errorf("relax: %d modules on a star", r.NumModules)
	}
}

module dinfomap

go 1.22
